//! Method C: the distributed in-cache index.
//!
//! The sorted key set is range-partitioned across the slaves so each
//! partition fits that slave's L2 cache. Masters hold only the partition
//! delimiters; queries arrive at a master, are dispatched by a binary
//! search over the delimiters into per-slave outgoing buffers, and are
//! shipped in batches over the network (MPI_Isend-style non-blocking
//! sends — the simulator overlaps the transfer with computation). Each
//! slave looks its batch up entirely in cache and sends the ranks onward.
//!
//! Results do **not** return through the master: the paper has each slave
//! "dispatch the results to the target" (the original requester). We model
//! the targets as unmeasured sink nodes, one per slave, that receive and
//! verify results but do no measured work — keeping the master's CPU and
//! ingress link out of the return path, exactly as Equation 8 prices it,
//! and avoiding an artificial single-ingress bottleneck the paper's many
//! distinct requesters don't have.
//!
//! The three submethods differ only in the slave-side structure:
//! C-1 a CSB+ tree, C-2 an L1-buffered CSB+ tree, C-3 a plain sorted array.
//!
//! Node ids: masters are `0..n_masters`, slaves
//! `n_masters..n_masters+n_slaves`, and the sinks are the last
//! `n_slaves` nodes.

use crate::setup::{node_memory, stream, ExperimentSetup, MethodId};
use crate::stats::RunStats;
use dini_cache_sim::{AccessKind, AddressSpace, MemoryModel, SimMemory};
use dini_cluster::sim::{Actor, Ctx, NodeId, SimCluster};
use dini_index::{BufferedLookup, CsbTree, Partitions, RankIndex, SortedArray};

/// Which structure the slaves use (the C-1/C-2/C-3 distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlaveStructure {
    /// CSB+ n-ary tree (Method C-1).
    CsbTree,
    /// CSB+ tree traversed with L1-targeted buffering (Method C-2).
    BufferedTree,
    /// Sorted array with binary search (Method C-3).
    SortedArray,
}

impl SlaveStructure {
    /// The corresponding method id.
    pub fn method_id(self) -> MethodId {
        match self {
            SlaveStructure::CsbTree => MethodId::C1,
            SlaveStructure::BufferedTree => MethodId::C2,
            SlaveStructure::SortedArray => MethodId::C3,
        }
    }
}

/// Protocol payload between masters and slaves.
#[derive(Debug, Clone)]
pub enum Msg {
    /// A batch of search keys, master → slave. `sent_ns` stamps the
    /// master's dispatch time so the target can measure batch response
    /// times.
    Queries {
        /// Simulated dispatch time at the master.
        sent_ns: f64,
        /// The batched search keys.
        keys: Vec<u32>,
    },
    /// The corresponding global ranks, slave → target, echoing the
    /// originating batch's dispatch stamp.
    Results {
        /// Dispatch time of the batch these ranks answer.
        sent_ns: f64,
        /// Global ranks, one per key.
        ranks: Vec<u32>,
    },
}

// ---------------------------------------------------------------------------
// Slave side
// ---------------------------------------------------------------------------

/// The lookup engine a slave runs; all three charge their accesses to the
/// slave's own simulated memory.
enum Engine {
    Tree(CsbTree),
    Buffered(CsbTree, BufferedLookup),
    Array(SortedArray),
}

impl Engine {
    fn rank_batch(&mut self, keys: &[u32], out: &mut Vec<u32>, mem: &mut SimMemory) -> f64 {
        match self {
            Engine::Tree(t) => {
                out.clear();
                out.reserve(keys.len());
                let mut ns = 0.0;
                for &k in keys {
                    let (r, c) = t.rank(k, mem);
                    out.push(r);
                    ns += c;
                }
                ns
            }
            Engine::Buffered(t, b) => b.rank_batch(t, keys, out, mem),
            Engine::Array(a) => {
                out.clear();
                out.reserve(keys.len());
                let mut ns = 0.0;
                for &k in keys {
                    let (r, c) = a.rank(k, mem);
                    out.push(r);
                    ns += c;
                }
                ns
            }
        }
    }

    fn footprint_bytes(&self) -> u64 {
        match self {
            Engine::Tree(t) => t.footprint_bytes(),
            Engine::Buffered(t, b) => t.footprint_bytes() + b.buffer_footprint_bytes(),
            Engine::Array(a) => a.footprint_bytes(),
        }
    }
}

/// A slave node: one cache-resident partition plus double-buffered message
/// regions.
struct SlaveActor {
    engine: Engine,
    mem: SimMemory,
    base_rank: u32,
    /// Node id of the sink ("target") results are dispatched to.
    sink: NodeId,
    /// Whether overlapped receives pollute the cache (ablation switch).
    model_receive_pollution: bool,
    /// Two message regions, alternated per message: the one being
    /// processed and the one the next (overlapped) receive lands in.
    msg_regions: [u64; 2],
    result_region: u64,
    which: usize,
    ranks: Vec<u32>,
}

impl SlaveActor {
    fn build(
        setup: &ExperimentSetup,
        structure: SlaveStructure,
        part_keys: &[u32],
        base_rank: u32,
        sink: NodeId,
    ) -> Self {
        let m = &setup.machine;
        let mut space = AddressSpace::new();
        let build_tree = |base: u64| {
            CsbTree::with_leaf_entries(
                part_keys,
                m.keys_per_node(),
                m.leaf_entries_per_line(),
                m.l2.line_bytes,
                base,
                m.comp_cost_node_ns,
            )
        };
        let engine = match structure {
            SlaveStructure::CsbTree => {
                let base = space.alloc_lines(0);
                let t = build_tree(base);
                space.alloc_lines(t.footprint_bytes());
                Engine::Tree(t)
            }
            SlaveStructure::BufferedTree => {
                let base = space.alloc_lines(0);
                // Method C-2 sizes subtrees for the *L1* cache.
                let t = build_tree(base);
                space.alloc_lines(t.footprint_bytes());
                let b = BufferedLookup::for_cache(
                    &t,
                    m.l1.size_bytes,
                    setup.fill_factor,
                    &mut space,
                    setup.batch_keys(),
                );
                Engine::Buffered(t, b)
            }
            SlaveStructure::SortedArray => {
                let base = space.alloc_lines(part_keys.len() as u64 * 4);
                Engine::Array(SortedArray::new(part_keys.to_vec(), base, m.cmp_cost_ns))
            }
        };
        let msg_bytes = setup.batch_bytes as u64;
        let msg_regions = [space.alloc_pages(msg_bytes), space.alloc_pages(msg_bytes)];
        let result_region = space.alloc_pages(msg_bytes);
        Self {
            engine,
            mem: node_memory(setup),
            base_rank,
            sink,
            model_receive_pollution: setup.model_receive_pollution,
            msg_regions,
            result_region,
            which: 0,
            ranks: Vec::with_capacity(setup.batch_keys()),
        }
    }
}

impl Actor<Msg> for SlaveActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, bytes: u64, payload: Msg) {
        let Msg::Queries { sent_ns, keys } = payload else {
            unreachable!("slaves only receive queries");
        };
        let region = self.msg_regions[self.which];
        // The message the NIC is receiving *while we compute* (overlapped
        // communication) installs its lines behind our back: cache
        // pollution with no CPU charge — the contention the paper blames
        // for the 64 → 128 KB dip.
        if self.model_receive_pollution && ctx.pending_messages() > 0 {
            let next = self.msg_regions[1 - self.which];
            self.mem.touch(next, bytes as u32, AccessKind::Pollute);
        }
        let mut ns = 0.0;
        // Read the batch of keys from the message buffer (sequential).
        ns += stream(&mut self.mem, region, (keys.len() * 4) as u32, false);
        // Look every key up in the cache-resident partition.
        ns += self.engine.rank_batch(&keys, &mut self.ranks, &mut self.mem);
        // Compose global ranks and write the results out (sequential; the
        // paper stores them over the search keys to halve the footprint —
        // we keep a dedicated region but bill the same 4 B/key stream).
        for r in &mut self.ranks {
            *r += self.base_rank;
        }
        ns += stream(&mut self.mem, self.result_region, (self.ranks.len() * 4) as u32, true);
        ctx.busy(ns);
        // "…and dispatches the results to the target."
        ctx.send(
            self.sink,
            (self.ranks.len() * 4) as u64,
            Msg::Results { sent_ns, ranks: std::mem::take(&mut self.ranks) },
        );
        self.which = 1 - self.which;
    }
}

/// The "target" node: receives results, verifies them, does no measured
/// work (it stands for the external requesters the paper dispatches to).
/// It also clocks each batch's response time — dispatch at the master to
/// results delivered here.
#[derive(Default)]
struct SinkActor {
    results_in: u64,
    checksum: u64,
    rtt: dini_cluster::LogHistogram,
}

impl Actor<Msg> for SinkActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, _bytes: u64, payload: Msg) {
        let Msg::Results { sent_ns, ranks } = payload else {
            unreachable!("the sink only receives results");
        };
        self.rtt.record(ctx.now() - sent_ns);
        self.results_in += ranks.len() as u64;
        for r in ranks {
            self.checksum = self.checksum.wrapping_add(r as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Master side
// ---------------------------------------------------------------------------

/// A master node: the delimiter array plus per-slave outgoing buffers.
struct MasterActor<'a> {
    setup: &'a ExperimentSetup,
    keys: &'a [u32],
    delims: SortedArray,
    mem: SimMemory,
    in_base: u64,
    out_bases: Vec<u64>,
    out_bufs: Vec<Vec<u32>>,
    /// Accumulated-but-unbilled memory/compute ns (billed at each send).
    pending_ns: f64,
    /// Keys already stream-read from the input array (billed in bulk).
    unread_keys: usize,
    /// Per-slave flush threshold in keys. With uniform keys all buffers
    /// fill in lock-step, which would emit synchronized 10-message bursts
    /// that serialize on the TX link — an artifact a real eager-protocol
    /// MPI never exhibits. The *first* flush per slave is staggered
    /// (slave s flushes at `(s+1)/n_slaves` of a batch), after which each
    /// buffer flushes at the full batch size, so messages leave evenly
    /// spaced.
    flush_at: Vec<usize>,
}

impl<'a> MasterActor<'a> {
    fn build(setup: &'a ExperimentSetup, delimiters: &[u32], keys: &'a [u32]) -> Self {
        let m = &setup.machine;
        let mut space = AddressSpace::new();
        let delim_base = space.alloc_lines(delimiters.len() as u64 * 4);
        let in_base = space.alloc_pages(keys.len() as u64 * 4);
        let out_bases =
            (0..setup.n_slaves).map(|_| space.alloc_pages(setup.batch_bytes as u64)).collect();
        Self {
            setup,
            keys,
            delims: SortedArray::new(delimiters.to_vec(), delim_base, m.cmp_cost_ns),
            mem: node_memory(setup),
            in_base,
            out_bases,
            out_bufs: vec![Vec::with_capacity(setup.batch_keys()); setup.n_slaves],
            pending_ns: 0.0,
            unread_keys: 0,
            flush_at: (0..setup.n_slaves)
                .map(|s| (setup.batch_keys() * (s + 1)).div_ceil(setup.n_slaves).max(1))
                .collect(),
        }
    }

    /// Flush slave `s`'s buffer as one network message.
    fn flush(&mut self, s: usize, ctx: &mut Ctx<'_, Msg>) {
        let buf =
            std::mem::replace(&mut self.out_bufs[s], Vec::with_capacity(self.setup.batch_keys()));
        if buf.is_empty() {
            self.out_bufs[s] = buf;
            return;
        }
        // Bill the sequential write of the outgoing buffer.
        self.pending_ns += stream(&mut self.mem, self.out_bases[s], (buf.len() * 4) as u32, true);
        ctx.busy(self.pending_ns);
        self.pending_ns = 0.0;
        let bytes = (buf.len() * 4) as u64;
        ctx.send(self.setup.n_masters + s, bytes, Msg::Queries { sent_ns: ctx.now(), keys: buf });
    }
}

impl Actor<Msg> for MasterActor<'_> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let batch_keys = self.setup.batch_keys();
        let window_keys = self.setup.max_outstanding_bytes.map(|b| (b / 4).max(1));
        let mut buffered_keys = 0usize;
        for i in 0..self.keys.len() {
            let key = self.keys[i];
            self.unread_keys += 1;
            // Dispatch: binary search over the (L1-resident) delimiters.
            let (slave, c) = self.delims.rank(key, &mut self.mem);
            self.pending_ns += c;
            let s = slave as usize;
            self.out_bufs[s].push(key);
            buffered_keys += 1;
            if self.out_bufs[s].len() >= self.flush_at[s] {
                self.flush_at[s] = batch_keys;
                // Bill the sequential read of the input keys consumed since
                // the last send (one bulk stream, same W1 cost as per-key).
                let off = (i + 1 - self.unread_keys) as u64 * 4;
                self.pending_ns +=
                    stream(&mut self.mem, self.in_base + off, (self.unread_keys * 4) as u32, false);
                self.unread_keys = 0;
                buffered_keys -= self.out_bufs[s].len();
                self.flush(s, ctx);
            } else if window_keys.is_some_and(|w| buffered_keys >= w) {
                // Bounded send pool: flush everything (messages smaller
                // than the nominal batch).
                let off = (i + 1 - self.unread_keys) as u64 * 4;
                self.pending_ns +=
                    stream(&mut self.mem, self.in_base + off, (self.unread_keys * 4) as u32, false);
                self.unread_keys = 0;
                buffered_keys = 0;
                for s in 0..self.setup.n_slaves {
                    self.flush(s, ctx);
                }
            }
        }
        if self.unread_keys > 0 {
            let off = (self.keys.len() - self.unread_keys) as u64 * 4;
            self.pending_ns +=
                stream(&mut self.mem, self.in_base + off, (self.unread_keys * 4) as u32, false);
            self.unread_keys = 0;
        }
        for s in 0..self.setup.n_slaves {
            self.flush(s, ctx);
        }
        ctx.busy(self.pending_ns);
        self.pending_ns = 0.0;
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _bytes: u64, _payload: Msg) {
        unreachable!("masters dispatch only; results go straight to the target");
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Run one of the Method C variants on the simulated cluster.
pub fn run_method_c(
    setup: &ExperimentSetup,
    structure: SlaveStructure,
    index_keys: &[u32],
    search_keys: &[u32],
) -> RunStats {
    setup.validate();
    let parts = Partitions::split(index_keys, setup.n_slaves);

    // One slave actor per partition, each with its own target node.
    let mut slaves: Vec<SlaveActor> = parts
        .ranges
        .iter()
        .enumerate()
        .map(|(j, r)| {
            let sink_id = setup.n_nodes() + j; // unmeasured target node
            SlaveActor::build(
                setup,
                structure,
                &index_keys[r.clone()],
                parts.base_ranks[j],
                sink_id,
            )
        })
        .collect();

    // Check the paper's premise: every partition fits its slave's L2.
    // (Not an assert — ablations deliberately violate it — but recorded.)
    let _fits = slaves.iter().all(|s| s.engine.footprint_bytes() <= setup.machine.l2.size_bytes);

    // Masters share the work: contiguous shards of the search keys.
    let shard = search_keys.len().div_ceil(setup.n_masters);
    let mut masters: Vec<MasterActor<'_>> = (0..setup.n_masters)
        .map(|i| {
            let lo = (i * shard).min(search_keys.len());
            let hi = ((i + 1) * shard).min(search_keys.len());
            MasterActor::build(setup, &parts.delimiters, &search_keys[lo..hi])
        })
        .collect();

    let mut sinks: Vec<SinkActor> = (0..setup.n_slaves).map(|_| SinkActor::default()).collect();
    let mut sim = SimCluster::new(setup.network);
    if let Some(sw) = setup.switch {
        sim = sim.with_switch(sw);
    }
    let mut actors: Vec<&mut dyn Actor<Msg>> = Vec::with_capacity(setup.n_nodes() + setup.n_slaves);
    for m in &mut masters {
        actors.push(m);
    }
    for s in &mut slaves {
        actors.push(s);
    }
    for s in &mut sinks {
        actors.push(s);
    }
    let report = sim.run(&mut actors);

    let n_keys = search_keys.len() as u64;
    let results_in: u64 = sinks.iter().map(|s| s.results_in).sum();
    debug_assert_eq!(results_in, n_keys, "every query must produce a result");
    let checksum = sinks.iter().fold(0u64, |acc, s| acc.wrapping_add(s.checksum));
    let mut rtt = dini_cluster::LogHistogram::new();
    for s in &sinks {
        rtt.merge(&s.rtt);
    }

    let mut mem_stats = dini_cache_sim::AccessStats::default();
    for m in &masters {
        mem_stats.merge(m.mem.stats());
    }
    for s in &slaves {
        mem_stats.merge(s.mem.stats());
    }

    let slave_ids = setup.n_masters..setup.n_nodes();
    let master_ids = 0..setup.n_masters;
    let search_time_s = report.makespan_ns * 1e-9;
    RunStats {
        method: structure.method_id(),
        batch_bytes: setup.batch_bytes,
        n_keys,
        search_time_s,
        per_key_ns: if n_keys == 0 { 0.0 } else { report.makespan_ns / n_keys as f64 },
        slave_idle: report.mean_idle(slave_ids),
        master_idle: report.mean_idle(master_ids),
        msgs: report.total_msgs,
        net_bytes: report.total_bytes,
        mem: mem_stats,
        batch_rtt_mean_ns: rtt.mean(),
        batch_rtt_p99_ns: rtt.p99(),
        rank_checksum: checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::{run_method_a, run_method_b};
    use dini_index::traits::oracle_rank;
    use dini_workload::{gen_search_keys, gen_sorted_unique_keys};

    fn paperish(n_index: usize, batch: usize) -> ExperimentSetup {
        ExperimentSetup { n_index_keys: n_index, batch_bytes: batch, ..ExperimentSetup::paper() }
    }

    #[test]
    fn all_variants_compute_the_oracle_checksum() {
        let setup = paperish(50_000, 8 * 1024);
        let idx = gen_sorted_unique_keys(setup.n_index_keys, 1);
        let q = gen_search_keys(20_000, 2);
        let want: u64 = q.iter().map(|&k| oracle_rank(&idx, k) as u64).sum();
        for s in
            [SlaveStructure::CsbTree, SlaveStructure::BufferedTree, SlaveStructure::SortedArray]
        {
            let stats = run_method_c(&setup, s, &idx, &q);
            assert_eq!(stats.rank_checksum, want, "{:?}", s);
            assert_eq!(stats.n_keys, 20_000);
        }
    }

    #[test]
    fn c_matches_a_and_b_answers() {
        let setup = paperish(30_000, 16 * 1024);
        let idx = gen_sorted_unique_keys(setup.n_index_keys, 3);
        let q = gen_search_keys(10_000, 4);
        let a = run_method_a(&setup, &idx, &q);
        let b = run_method_b(&setup, &idx, &q);
        let c3 = run_method_c(&setup, SlaveStructure::SortedArray, &idx, &q);
        assert_eq!(a.rank_checksum, c3.rank_checksum);
        assert_eq!(b.rank_checksum, c3.rank_checksum);
    }

    #[test]
    fn messages_flow_and_are_counted() {
        let setup = paperish(50_000, 8 * 1024);
        let idx = gen_sorted_unique_keys(setup.n_index_keys, 5);
        let q = gen_search_keys(40_000, 6);
        let stats = run_method_c(&setup, SlaveStructure::SortedArray, &idx, &q);
        // Queries out + results back: at least 2 messages per slave shard.
        assert!(stats.msgs >= 20, "{} msgs", stats.msgs);
        // ~40 000 keys × 4 B × 2 directions.
        assert!(stats.net_bytes >= 2 * 40_000 * 4);
        assert!(stats.search_time_s > 0.0);
    }

    #[test]
    fn slaves_idle_more_at_small_batches() {
        // The paper: per-message MPI/OS overhead starves the slaves at
        // small batches (50 % idle at 8 KB) and amortises away as batches
        // grow. Compare 8 KB against 32 KB, both deep in the interleaving
        // regime (at very large batches a second idle source appears in
        // our strict-batching model — the flush-at-end tail — see
        // EXPERIMENTS.md).
        let idx = gen_sorted_unique_keys(327_680, 7);
        let q = gen_search_keys(1 << 20, 8);
        let small =
            run_method_c(&paperish(327_680, 8 * 1024), SlaveStructure::SortedArray, &idx, &q);
        let large =
            run_method_c(&paperish(327_680, 32 * 1024), SlaveStructure::SortedArray, &idx, &q);
        assert!(
            small.slave_idle > large.slave_idle,
            "8 KB idle {} must exceed 32 KB idle {}",
            small.slave_idle,
            large.slave_idle
        );
    }

    #[test]
    fn c3_beats_a_at_paper_batch_size() {
        // The headline: with paper-scale interleaving (per-slave share of
        // the workload spanning many messages), the distributed in-cache
        // index outruns the replicated tree.
        let setup = paperish(327_680, 64 * 1024);
        let idx = gen_sorted_unique_keys(setup.n_index_keys, 9);
        let q = gen_search_keys(1 << 21, 10);
        let a = run_method_a(&setup, &idx, &q);
        let c3 = run_method_c(&setup, SlaveStructure::SortedArray, &idx, &q);
        assert!(
            c3.search_time_s < a.search_time_s,
            "C-3 ({}) must beat A ({})",
            c3.search_time_s,
            a.search_time_s
        );
    }

    #[test]
    fn slave_partitions_stay_cache_resident() {
        let setup = paperish(327_680, 128 * 1024);
        let idx = gen_sorted_unique_keys(setup.n_index_keys, 11);
        let q = gen_search_keys(1 << 18, 12);
        let stats = run_method_c(&setup, SlaveStructure::SortedArray, &idx, &q);
        // Slave lookups hit cache; the only RAM traffic is streamed buffers
        // (billed at W1, not counted as random misses) and cold start.
        let mpk = stats.l2_misses_per_key();
        assert!(mpk < 0.5, "cache-resident partitions: {mpk} misses/key");
    }

    #[test]
    fn multi_master_splits_the_work() {
        let idx = gen_sorted_unique_keys(100_000, 13);
        let q = gen_search_keys(1 << 18, 14);
        let one =
            run_method_c(&paperish(100_000, 64 * 1024), SlaveStructure::SortedArray, &idx, &q);
        let two = run_method_c(
            &ExperimentSetup { n_masters: 2, ..paperish(100_000, 64 * 1024) },
            SlaveStructure::SortedArray,
            &idx,
            &q,
        );
        assert_eq!(one.rank_checksum, two.rank_checksum);
        assert!(
            two.search_time_s < one.search_time_s,
            "two masters ({}) should relieve the master bottleneck ({})",
            two.search_time_s,
            one.search_time_s
        );
    }

    #[test]
    fn empty_query_stream() {
        let setup = paperish(10_000, 8 * 1024);
        let idx = gen_sorted_unique_keys(setup.n_index_keys, 15);
        let stats = run_method_c(&setup, SlaveStructure::SortedArray, &idx, &[]);
        assert_eq!(stats.n_keys, 0);
        assert_eq!(stats.msgs, 0);
    }
}
