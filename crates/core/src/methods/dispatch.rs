//! Distributed Methods A and B with *real* load balancing.
//!
//! The paper gives Methods A and B "the benefit of the doubt": their
//! 11-node deployment needs a dispatcher that load-balances incoming
//! queries across the replicas, and the paper charges that dispatcher
//! nothing ("the overhead of load balancing is assumed to be zero"),
//! normalising the one-node time by 11 instead. This module implements
//! the deployment the paper waves away — a dispatcher node that actually
//! routes batches to replica nodes over the simulated network — so the
//! assumption can be tested rather than granted: compare
//! [`run_replicated_distributed`] against the normalised
//! [`crate::methods::run_method_a`]/[`crate::methods::run_method_b`] ideal
//! (`ablation_dispatch` regenerates this).
//!
//! Unlike Method C's master, the dispatcher does *not* inspect keys — any
//! replica can answer any query — so its per-key CPU work is lower (no
//! delimiter search), but every query still crosses the network once and
//! the replicas still pay the out-of-cache tree-walk that motivates the
//! whole paper.

use crate::setup::{node_memory, stream, ExperimentSetup, MethodId};
use crate::stats::RunStats;
use dini_cache_sim::{AccessKind, AddressSpace, MemoryModel, SimMemory};
use dini_cluster::sim::{Actor, Ctx, NodeId, SimCluster};
use dini_index::{BufferedLookup, CsbTree, RankIndex};

/// How the dispatcher spreads batches over the replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadBalance {
    /// Batch `i` goes to replica `i mod n` — the static policy the
    /// paper's zero-overhead assumption best matches.
    RoundRobin,
    /// Uniform random replica per batch (seeded, deterministic). With
    /// uniform batch costs this is strictly worse than round-robin:
    /// binomial imbalance leaves some replicas idle while others queue.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Credit-based work pulling: each replica holds at most `credits`
    /// unacknowledged batches; the dispatcher sends the next batch to
    /// whichever replica acknowledges first. Adapts to stragglers at the
    /// cost of one tiny ack message per batch.
    WorkPull {
        /// Maximum unacknowledged batches per replica (≥ 1; 2 =
        /// double-buffering).
        credits: usize,
    },
}

/// Protocol for the dispatcher/replica cluster.
#[derive(Debug, Clone)]
enum DMsg {
    /// A batch of queries, dispatcher → replica (stamped for RTT).
    Batch { sent_ns: f64, keys: Vec<u32> },
    /// Ranks, replica → its sink.
    Results { sent_ns: f64, ranks: Vec<u32> },
    /// Completion ack, replica → dispatcher (WorkPull only).
    Ack,
}

/// Which local method each replica runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaEngine {
    /// Per-key tree walk (Method A's replica).
    Naive,
    /// Zhou–Ross L2-buffered batch lookup (Method B's replica).
    Buffered,
}

struct ReplicaActor {
    tree: CsbTree,
    buffered: Option<BufferedLookup>,
    mem: SimMemory,
    sink: NodeId,
    dispatcher: NodeId,
    ack_dispatcher: bool,
    model_receive_pollution: bool,
    msg_regions: [u64; 2],
    result_region: u64,
    which: usize,
    ranks: Vec<u32>,
}

impl ReplicaActor {
    fn build(
        setup: &ExperimentSetup,
        engine: ReplicaEngine,
        index_keys: &[u32],
        sink: NodeId,
        ack_dispatcher: bool,
    ) -> Self {
        let m = &setup.machine;
        let mut space = AddressSpace::new();
        let tree_base = space.alloc_lines(0);
        let tree = CsbTree::with_leaf_entries(
            index_keys,
            m.keys_per_node(),
            m.leaf_entries_per_line(),
            m.l2.line_bytes,
            tree_base,
            m.comp_cost_node_ns,
        );
        space.alloc_lines(tree.footprint_bytes());
        let buffered = match engine {
            ReplicaEngine::Naive => None,
            ReplicaEngine::Buffered => Some(BufferedLookup::for_cache(
                &tree,
                m.l2.size_bytes,
                setup.fill_factor,
                &mut space,
                setup.batch_keys(),
            )),
        };
        let msg_bytes = setup.batch_bytes as u64;
        let msg_regions = [space.alloc_pages(msg_bytes), space.alloc_pages(msg_bytes)];
        let result_region = space.alloc_pages(msg_bytes);
        Self {
            tree,
            buffered,
            mem: node_memory(setup),
            sink,
            dispatcher: 0,
            ack_dispatcher,
            model_receive_pollution: setup.model_receive_pollution,
            msg_regions,
            result_region,
            which: 0,
            ranks: Vec::with_capacity(setup.batch_keys()),
        }
    }
}

impl Actor<DMsg> for ReplicaActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, DMsg>, _from: NodeId, bytes: u64, payload: DMsg) {
        let DMsg::Batch { sent_ns, keys } = payload else {
            unreachable!("replicas only receive batches");
        };
        let region = self.msg_regions[self.which];
        if self.model_receive_pollution && ctx.pending_messages() > 0 {
            let next = self.msg_regions[1 - self.which];
            self.mem.touch(next, bytes as u32, AccessKind::Pollute);
        }
        let mut ns = stream(&mut self.mem, region, (keys.len() * 4) as u32, false);
        match &mut self.buffered {
            None => {
                self.ranks.clear();
                self.ranks.reserve(keys.len());
                for &k in &keys {
                    let (r, c) = self.tree.rank(k, &mut self.mem);
                    self.ranks.push(r);
                    ns += c;
                }
            }
            Some(b) => {
                ns += b.rank_batch(&self.tree, &keys, &mut self.ranks, &mut self.mem);
            }
        }
        ns += stream(&mut self.mem, self.result_region, (self.ranks.len() * 4) as u32, true);
        ctx.busy(ns);
        ctx.send(
            self.sink,
            (self.ranks.len() * 4) as u64,
            DMsg::Results { sent_ns, ranks: std::mem::take(&mut self.ranks) },
        );
        if self.ack_dispatcher {
            ctx.send(self.dispatcher, 8, DMsg::Ack);
        }
        self.which = 1 - self.which;
    }
}

#[derive(Default)]
struct SinkActor {
    results_in: u64,
    checksum: u64,
    rtt: dini_cluster::LogHistogram,
}

impl Actor<DMsg> for SinkActor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, DMsg>, _from: NodeId, _bytes: u64, payload: DMsg) {
        let DMsg::Results { sent_ns, ranks } = payload else {
            unreachable!("the sink only receives results");
        };
        self.rtt.record(ctx.now() - sent_ns);
        self.results_in += ranks.len() as u64;
        for r in ranks {
            self.checksum = self.checksum.wrapping_add(r as u64);
        }
    }
}

struct DispatcherActor<'a> {
    setup: &'a ExperimentSetup,
    keys: &'a [u32],
    policy: LoadBalance,
    mem: SimMemory,
    in_base: u64,
    out_base: u64,
    /// WorkPull state: batches not yet sent (as index ranges).
    pending: std::collections::VecDeque<(usize, usize)>,
    rng: u64,
}

impl<'a> DispatcherActor<'a> {
    fn build(setup: &'a ExperimentSetup, policy: LoadBalance, keys: &'a [u32]) -> Self {
        let mut space = AddressSpace::new();
        let in_base = space.alloc_pages(keys.len() as u64 * 4);
        let out_base = space.alloc_pages(setup.batch_bytes as u64);
        Self {
            setup,
            keys,
            policy,
            mem: node_memory(setup),
            in_base,
            out_base,
            pending: std::collections::VecDeque::new(),
            rng: match policy {
                LoadBalance::Random { seed } => seed | 1,
                _ => 1,
            },
        }
    }

    #[inline]
    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32
    }

    /// Bill the batch's buffer traffic and send it to `replica`.
    fn send_batch(&mut self, lo: usize, hi: usize, replica: usize, ctx: &mut Ctx<'_, DMsg>) {
        let batch = self.keys[lo..hi].to_vec();
        let bytes = (batch.len() * 4) as u64;
        let mut ns = stream(&mut self.mem, self.in_base + lo as u64 * 4, bytes as u32, false);
        ns += stream(&mut self.mem, self.out_base, bytes as u32, true);
        ctx.busy(ns);
        ctx.send(1 + replica, bytes, DMsg::Batch { sent_ns: ctx.now(), keys: batch });
    }
}

impl Actor<DMsg> for DispatcherActor<'_> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DMsg>) {
        let batch_keys = self.setup.batch_keys();
        let n = self.setup.n_slaves;
        let mut batches: Vec<(usize, usize)> = Vec::new();
        let mut lo = 0usize;
        while lo < self.keys.len() {
            let hi = (lo + batch_keys).min(self.keys.len());
            batches.push((lo, hi));
            lo = hi;
        }
        match self.policy {
            LoadBalance::RoundRobin => {
                for (i, (lo, hi)) in batches.into_iter().enumerate() {
                    self.send_batch(lo, hi, i % n, ctx);
                }
            }
            LoadBalance::Random { .. } => {
                for (lo, hi) in batches {
                    let r = (self.next_random() as usize) % n;
                    self.send_batch(lo, hi, r, ctx);
                }
            }
            LoadBalance::WorkPull { credits } => {
                assert!(credits >= 1, "WorkPull needs at least one credit");
                self.pending = batches.into();
                'seed: for _ in 0..credits {
                    for r in 0..n {
                        let Some((lo, hi)) = self.pending.pop_front() else {
                            break 'seed;
                        };
                        self.send_batch(lo, hi, r, ctx);
                    }
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DMsg>, from: NodeId, _bytes: u64, payload: DMsg) {
        debug_assert!(matches!(payload, DMsg::Ack), "dispatcher only receives acks");
        if let Some((lo, hi)) = self.pending.pop_front() {
            self.send_batch(lo, hi, from - 1, ctx);
        }
    }
}

/// Run Method A or B as an *actually distributed* replicated deployment:
/// one dispatcher, `setup.n_slaves` replicas (each holding the full
/// tree), per-replica unmeasured sinks. Returns honest cluster makespan —
/// no free-normalisation — so the gap to `run_method_a`/`b` is exactly
/// the load-balancing + networking cost the paper assumes away.
pub fn run_replicated_distributed(
    setup: &ExperimentSetup,
    engine: ReplicaEngine,
    policy: LoadBalance,
    index_keys: &[u32],
    search_keys: &[u32],
) -> RunStats {
    setup.validate();
    let n = setup.n_slaves;
    let ack = matches!(policy, LoadBalance::WorkPull { .. });

    let mut replicas: Vec<ReplicaActor> =
        (0..n).map(|j| ReplicaActor::build(setup, engine, index_keys, 1 + n + j, ack)).collect();
    let mut dispatcher = DispatcherActor::build(setup, policy, search_keys);
    let mut sinks: Vec<SinkActor> = (0..n).map(|_| SinkActor::default()).collect();

    let mut sim = SimCluster::new(setup.network);
    if let Some(sw) = setup.switch {
        sim = sim.with_switch(sw);
    }
    let mut actors: Vec<&mut dyn Actor<DMsg>> = Vec::with_capacity(1 + 2 * n);
    actors.push(&mut dispatcher);
    for r in &mut replicas {
        actors.push(r);
    }
    for s in &mut sinks {
        actors.push(s);
    }
    let report = sim.run(&mut actors);

    let n_keys = search_keys.len() as u64;
    let results_in: u64 = sinks.iter().map(|s| s.results_in).sum();
    debug_assert_eq!(results_in, n_keys, "every query must produce a result");
    let checksum = sinks.iter().fold(0u64, |acc, s| acc.wrapping_add(s.checksum));
    let mut rtt = dini_cluster::LogHistogram::new();
    for s in &sinks {
        rtt.merge(&s.rtt);
    }
    let mut mem_stats = dini_cache_sim::AccessStats::default();
    mem_stats.merge(dispatcher.mem.stats());
    for r in &replicas {
        mem_stats.merge(r.mem.stats());
    }

    RunStats {
        method: match engine {
            ReplicaEngine::Naive => MethodId::A,
            ReplicaEngine::Buffered => MethodId::B,
        },
        batch_bytes: setup.batch_bytes,
        n_keys,
        search_time_s: report.makespan_ns * 1e-9,
        per_key_ns: if n_keys == 0 { 0.0 } else { report.makespan_ns / n_keys as f64 },
        slave_idle: report.mean_idle(1..1 + n),
        master_idle: report.mean_idle(0..1),
        msgs: report.total_msgs,
        net_bytes: report.total_bytes,
        mem: mem_stats,
        batch_rtt_mean_ns: rtt.mean(),
        batch_rtt_p99_ns: rtt.p99(),
        rank_checksum: checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::run_method_a;
    use dini_index::traits::oracle_rank;
    use dini_workload::{gen_search_keys, gen_sorted_unique_keys};

    fn setup(batch: usize) -> ExperimentSetup {
        ExperimentSetup { n_index_keys: 100_000, batch_bytes: batch, ..ExperimentSetup::paper() }
    }

    fn workload(s: &ExperimentSetup, n: usize) -> (Vec<u32>, Vec<u32>) {
        (gen_sorted_unique_keys(s.n_index_keys, 21), gen_search_keys(n, 22))
    }

    #[test]
    fn all_policies_compute_the_oracle_checksum() {
        let s = setup(16 * 1024);
        let (idx, q) = workload(&s, 50_000);
        let want: u64 = q.iter().map(|&k| oracle_rank(&idx, k) as u64).sum();
        for policy in [
            LoadBalance::RoundRobin,
            LoadBalance::Random { seed: 7 },
            LoadBalance::WorkPull { credits: 2 },
        ] {
            let r = run_replicated_distributed(&s, ReplicaEngine::Naive, policy, &idx, &q);
            assert_eq!(r.rank_checksum, want, "{policy:?}");
            assert_eq!(r.n_keys, 50_000);
        }
    }

    #[test]
    fn buffered_replicas_match_naive_answers() {
        let s = setup(64 * 1024);
        let (idx, q) = workload(&s, 100_000);
        let a =
            run_replicated_distributed(&s, ReplicaEngine::Naive, LoadBalance::RoundRobin, &idx, &q);
        let b = run_replicated_distributed(
            &s,
            ReplicaEngine::Buffered,
            LoadBalance::RoundRobin,
            &idx,
            &q,
        );
        assert_eq!(a.rank_checksum, b.rank_checksum);
    }

    #[test]
    fn real_dispatch_is_slower_than_the_papers_free_ideal() {
        // The paper's normalization assumes load balancing costs nothing.
        // An actual dispatcher adds network transfer + per-message
        // overhead, so the honest deployment can't beat the ideal.
        let s = setup(32 * 1024);
        let (idx, q) = workload(&s, 1 << 18);
        let ideal = run_method_a(&s, &idx, &q);
        let real =
            run_replicated_distributed(&s, ReplicaEngine::Naive, LoadBalance::RoundRobin, &idx, &q);
        assert!(
            real.search_time_s > ideal.search_time_s,
            "real {} vs ideal {}",
            real.search_time_s,
            ideal.search_time_s
        );
    }

    #[test]
    fn round_robin_beats_random_on_uniform_batches() {
        let s = setup(16 * 1024);
        let (idx, q) = workload(&s, 1 << 18);
        let rr =
            run_replicated_distributed(&s, ReplicaEngine::Naive, LoadBalance::RoundRobin, &idx, &q);
        let rnd = run_replicated_distributed(
            &s,
            ReplicaEngine::Naive,
            LoadBalance::Random { seed: 3 },
            &idx,
            &q,
        );
        assert!(
            rr.search_time_s <= rnd.search_time_s,
            "RR {} vs random {}",
            rr.search_time_s,
            rnd.search_time_s
        );
    }

    #[test]
    fn work_pull_is_competitive_with_round_robin() {
        let s = setup(16 * 1024);
        let (idx, q) = workload(&s, 1 << 18);
        let rr =
            run_replicated_distributed(&s, ReplicaEngine::Naive, LoadBalance::RoundRobin, &idx, &q);
        let wp = run_replicated_distributed(
            &s,
            ReplicaEngine::Naive,
            LoadBalance::WorkPull { credits: 2 },
            &idx,
            &q,
        );
        // Homogeneous replicas: pull ≈ round-robin, within 20 % either way
        // (acks cost a little; adaptivity buys nothing here).
        let ratio = wp.search_time_s / rr.search_time_s;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn work_pull_drains_everything() {
        // More batches than credits × replicas: the ack path must keep
        // feeding until the queue empties.
        let s = setup(8 * 1024);
        let (idx, q) = workload(&s, 200_000);
        let r = run_replicated_distributed(
            &s,
            ReplicaEngine::Naive,
            LoadBalance::WorkPull { credits: 1 },
            &idx,
            &q,
        );
        assert_eq!(r.n_keys, 200_000);
        // 8 KB batches → 98 batches; each also acks.
        assert!(r.msgs > 150, "{} msgs", r.msgs);
    }

    #[test]
    fn rtt_is_measured() {
        let s = setup(32 * 1024);
        let (idx, q) = workload(&s, 1 << 17);
        let r =
            run_replicated_distributed(&s, ReplicaEngine::Naive, LoadBalance::RoundRobin, &idx, &q);
        assert!(r.batch_rtt_mean_ns > 0.0);
        assert!(r.batch_rtt_p99_ns >= r.batch_rtt_mean_ns * 0.5);
    }
}
