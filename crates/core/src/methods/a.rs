//! Method A: the standard replicated-index lookup.
//!
//! Every node holds a full copy of the n-ary tree (here the CSB+ layout all
//! tree methods share) and looks keys up one at a time. Because the tree is
//! several times larger than L2, the steady state pays roughly one L2 miss
//! per non-resident level per lookup — the paper's motivating pathology.
//! The per-query path also streams the key in from an input buffer and the
//! result out to an output buffer (the model's `8/W1` term).

use crate::setup::{node_memory, stream, ExperimentSetup, MethodId};
use crate::stats::RunStats;
use dini_cache_sim::{AddressSpace, MemoryModel};
use dini_index::{CsbTree, RankIndex};

/// Run Method A over `search_keys` against an index of `index_keys`.
///
/// The batch size only sets the granularity at which the input/output
/// buffers are streamed; the lookup itself is one key at a time, so the
/// Figure 3 curve for Method A is essentially flat.
pub fn run_method_a(setup: &ExperimentSetup, index_keys: &[u32], search_keys: &[u32]) -> RunStats {
    setup.validate();
    let m = &setup.machine;
    let mut space = AddressSpace::new();
    let tree_base = space.alloc_lines(0);
    let tree = CsbTree::with_leaf_entries(
        index_keys,
        m.keys_per_node(),
        m.leaf_entries_per_line(),
        m.l2.line_bytes,
        tree_base,
        m.comp_cost_node_ns,
    );
    space.alloc_lines(tree.footprint_bytes());
    let in_base = space.alloc_pages(search_keys.len() as u64 * 4);
    let out_base = space.alloc_pages(search_keys.len() as u64 * 4);

    let mut mem = node_memory(setup);
    let mut ns = 0.0f64;
    let mut checksum = 0u64;
    let batch_keys = setup.batch_keys();

    let n_batches = search_keys.len().div_ceil(batch_keys.max(1)).max(1);
    for (bi, batch) in search_keys.chunks(batch_keys).enumerate() {
        let off = (bi * batch_keys) as u64 * 4;
        // Each replica node receives its query stream as batch-sized
        // messages; while this batch is processed the *next* one is being
        // received (overlapped communication), polluting the cache at no
        // CPU cost — the paper's §4.1 contention effect.
        if setup.model_receive_pollution && bi + 1 < n_batches {
            let next_off = ((bi + 1) * batch_keys) as u64 * 4;
            let next_len = (search_keys.len() - (bi + 1) * batch_keys).min(batch_keys) * 4;
            mem.touch(in_base + next_off, next_len as u32, dini_cache_sim::AccessKind::Pollute);
        }
        // Stream the batch of keys in and, after the lookups, the results
        // out — sequential accesses billed at W1, exactly the model's
        // 8/W1 per key.
        ns += stream(&mut mem, in_base + off, (batch.len() * 4) as u32, false);
        for &key in batch {
            let (rank, c) = tree.rank(key, &mut mem);
            ns += c;
            checksum = checksum.wrapping_add(rank as u64);
        }
        ns += stream(&mut mem, out_base + off, (batch.len() * 4) as u32, true);
    }

    // The paper's normalization: all `n_nodes` nodes run replicas in
    // parallel (load balancing assumed free), so per-cluster time is the
    // one-node time divided by the node count.
    let search_time_s = ns * 1e-9 / setup.n_nodes() as f64;
    RunStats {
        method: MethodId::A,
        batch_bytes: setup.batch_bytes,
        n_keys: search_keys.len() as u64,
        search_time_s,
        per_key_ns: if search_keys.is_empty() { 0.0 } else { ns / search_keys.len() as f64 },
        slave_idle: 0.0,
        master_idle: 0.0,
        msgs: 0,
        net_bytes: 0,
        mem: *mem.stats(),
        // Local processing: a batch "responds" when its lookups finish.
        batch_rtt_mean_ns: ns / n_batches as f64,
        batch_rtt_p99_ns: 0.0,
        rank_checksum: checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dini_cache_sim::NullMemory;
    use dini_index::traits::oracle_rank;
    use dini_workload::{gen_search_keys, gen_sorted_unique_keys};

    fn small_run(n_index: usize, n_search: usize) -> (Vec<u32>, Vec<u32>, RunStats) {
        let setup = ExperimentSetup::small();
        let idx = gen_sorted_unique_keys(n_index, 11);
        let q = gen_search_keys(n_search, 22);
        let stats = run_method_a(&setup, &idx, &q);
        (idx, q, stats)
    }

    #[test]
    fn checksum_matches_oracle() {
        let (idx, q, stats) = small_run(10_000, 5_000);
        let want: u64 = q.iter().map(|&k| oracle_rank(&idx, k) as u64).sum();
        assert_eq!(stats.rank_checksum, want);
    }

    #[test]
    fn out_of_cache_tree_pays_per_level_misses() {
        // The paper's premise: a > L2 tree costs ~1 miss per lower level.
        let setup = ExperimentSetup { n_index_keys: 327_680, ..ExperimentSetup::small() };
        let idx = gen_sorted_unique_keys(setup.n_index_keys, 3);
        let q = gen_search_keys(100_000, 4);
        let stats = run_method_a(&setup, &idx, &q);
        let mpk = stats.l2_misses_per_key();
        assert!(mpk > 1.0, "a 1.7 MB tree must miss in steady state, got {mpk}");
        assert!(mpk < 7.0, "misses bounded by tree depth, got {mpk}");
    }

    #[test]
    fn batch_size_barely_matters() {
        let idx = gen_sorted_unique_keys(100_000, 5);
        let q = gen_search_keys(50_000, 6);
        let t8 = run_method_a(&ExperimentSetup::small().with_batch_bytes(8 * 1024), &idx, &q);
        let t1m = run_method_a(&ExperimentSetup::small().with_batch_bytes(1 << 20), &idx, &q);
        let ratio = t8.search_time_s / t1m.search_time_s;
        assert!((0.9..1.1).contains(&ratio), "Method A should be batch-flat, ratio {ratio}");
    }

    #[test]
    fn normalization_divides_by_cluster_size() {
        let idx = gen_sorted_unique_keys(50_000, 7);
        let q = gen_search_keys(10_000, 8);
        let small = ExperimentSetup::small();
        let wide = ExperimentSetup { n_slaves: 21, ..ExperimentSetup::small() };
        let a = run_method_a(&small, &idx, &q);
        let b = run_method_a(&wide, &idx, &q);
        let expect = small.n_nodes() as f64 / wide.n_nodes() as f64;
        assert!((b.search_time_s / a.search_time_s - expect).abs() < 1e-9);
    }

    #[test]
    fn empty_queries_are_fine() {
        let idx = gen_sorted_unique_keys(1000, 9);
        let stats = run_method_a(&ExperimentSetup::small(), &idx, &[]);
        assert_eq!(stats.n_keys, 0);
        assert_eq!(stats.rank_checksum, 0);
    }

    #[test]
    fn ranks_agree_with_flat_tree() {
        // Belt and braces: the tree inside method A is the shared CsbTree.
        let idx = gen_sorted_unique_keys(5_000, 10);
        let tree = CsbTree::new(&idx, 7, 32, 0, 30.0);
        for key in [0u32, 1, 999_999, u32::MAX] {
            assert_eq!(tree.rank(key, &mut NullMemory).0, oracle_rank(&idx, key));
        }
    }
}
