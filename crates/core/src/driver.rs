//! One entry point to run any of the five methods.

use crate::methods::{run_method_a, run_method_b, run_method_c, SlaveStructure};
use crate::setup::{ExperimentSetup, MethodId};
use crate::stats::RunStats;
use dini_workload::{gen_search_keys, gen_sorted_unique_keys};

/// Run `method` under `setup` over explicit key sets.
pub fn run_method(
    method: MethodId,
    setup: &ExperimentSetup,
    index_keys: &[u32],
    search_keys: &[u32],
) -> RunStats {
    match method {
        MethodId::A => run_method_a(setup, index_keys, search_keys),
        MethodId::B => run_method_b(setup, index_keys, search_keys),
        MethodId::C1 => run_method_c(setup, SlaveStructure::CsbTree, index_keys, search_keys),
        MethodId::C2 => run_method_c(setup, SlaveStructure::BufferedTree, index_keys, search_keys),
        MethodId::C3 => run_method_c(setup, SlaveStructure::SortedArray, index_keys, search_keys),
    }
}

/// Deterministic default seeds for experiment workloads.
pub const INDEX_SEED: u64 = 0x5EED_1DE5;
/// Seed for the search-key stream.
pub const SEARCH_SEED: u64 = 0x5EED_5EA2;

/// Generate the standard workload for `setup`: its index keys plus
/// `n_search` uniform queries, seeded deterministically.
pub fn standard_workload(setup: &ExperimentSetup, n_search: usize) -> (Vec<u32>, Vec<u32>) {
    (gen_sorted_unique_keys(setup.n_index_keys, INDEX_SEED), gen_search_keys(n_search, SEARCH_SEED))
}

/// Run every method in `methods` over one shared workload; returns stats in
/// the same order.
pub fn run_comparison(
    methods: &[MethodId],
    setup: &ExperimentSetup,
    n_search: usize,
) -> Vec<RunStats> {
    let (index_keys, search_keys) = standard_workload(setup, n_search);
    methods.iter().map(|&m| run_method(m, setup, &index_keys, &search_keys)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_shares_one_workload() {
        let setup = ExperimentSetup {
            n_index_keys: 20_000,
            batch_bytes: 8 * 1024,
            ..ExperimentSetup::paper()
        };
        let all = run_comparison(&MethodId::ALL, &setup, 10_000);
        assert_eq!(all.len(), 5);
        let checksum = all[0].rank_checksum;
        for s in &all {
            assert_eq!(s.rank_checksum, checksum, "{} disagrees", s.method);
            assert_eq!(s.n_keys, 10_000);
            assert!(s.search_time_s > 0.0);
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let setup = ExperimentSetup::small();
        let (i1, q1) = standard_workload(&setup, 100);
        let (i2, q2) = standard_workload(&setup, 100);
        assert_eq!(i1, i2);
        assert_eq!(q1, q2);
    }

    #[test]
    fn run_stats_are_reproducible_bit_for_bit() {
        let setup = ExperimentSetup {
            n_index_keys: 30_000,
            batch_bytes: 16 * 1024,
            ..ExperimentSetup::paper()
        };
        let (idx, q) = standard_workload(&setup, 5_000);
        let a = run_method(MethodId::C3, &setup, &idx, &q);
        let b = run_method(MethodId::C3, &setup, &idx, &q);
        assert_eq!(a.search_time_s.to_bits(), b.search_time_s.to_bits());
        assert_eq!(a.msgs, b.msgs);
    }
}
