//! # dini-core
//!
//! The paper's contribution: the five index-lookup methods of
//! *"Fast Query Processing by Distributing an Index over CPU Caches"*
//! (Ma & Cooperman, CLUSTER 2005), runnable on the deterministic cluster
//! simulator (regenerating the paper's figures) and — for Method C-3 — on
//! real threads as a usable library ([`native::DistributedIndex`]).
//!
//! * [`setup`] — [`ExperimentSetup`]: Tables 1 and 2 plus cluster shape;
//!   derives the paper's Table 1 from first principles.
//! * [`methods`] — Method A (replicated tree), Method B (replicated tree +
//!   Zhou–Ross buffering), Methods C-1/C-2/C-3 (the distributed in-cache
//!   index with tree / buffered-tree / sorted-array slaves).
//! * [`driver`] — [`run_method`]/[`run_comparison`]: one workload, any
//!   method, a [`RunStats`] out.
//! * [`native`] — the thread-backed, core-pinned Method C-3 facade.

#![warn(missing_docs)]

pub mod driver;
pub mod methods;
pub mod native;
pub mod setup;
pub mod stats;

pub use driver::{run_comparison, run_method, standard_workload, INDEX_SEED, SEARCH_SEED};
pub use methods::{
    run_method_a, run_method_b, run_method_c, run_replicated_distributed, LoadBalance,
    ReplicaEngine, SlaveStructure,
};
pub use native::{DistributedIndex, NativeConfig, NativeStructure};
pub use setup::{ExperimentSetup, MethodId, Table1};
pub use stats::RunStats;
