//! Experiment setup: the paper's Table 1 derived from first principles.
//!
//! Given a key count and a machine description, everything else in Table 1
//! follows: the node size equals the cache-line size, `n` keys fit a node,
//! the tree has `T` levels, each slave's partition tree has `L` levels, and
//! the Zhou–Ross decomposition yields the paper's 320 KB lower subtrees
//! under a tiny root subtree.

use dini_cache_sim::{MachineParams, MemoryModel};
use dini_cluster::NetworkModel;
use dini_index::{CsbTree, RankIndex, SubtreeCuts};
use serde::{Deserialize, Serialize};

/// Which of the paper's five methods to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodId {
    /// Replicated n-ary tree, one lookup at a time.
    A,
    /// Replicated n-ary tree, Zhou–Ross buffered batch lookup (L2 subtrees).
    B,
    /// Distributed in-cache index; slave partition stored as a CSB+ tree.
    C1,
    /// Distributed; slave partition as an L1-buffered CSB+ tree.
    C2,
    /// Distributed; slave partition as a sorted array (binary search).
    C3,
}

impl MethodId {
    /// All five methods in the paper's presentation order.
    pub const ALL: [MethodId; 5] =
        [MethodId::A, MethodId::B, MethodId::C1, MethodId::C2, MethodId::C3];

    /// Whether this is one of the distributed (Method C) variants.
    pub fn is_distributed(self) -> bool {
        matches!(self, MethodId::C1 | MethodId::C2 | MethodId::C3)
    }

    /// The paper's name for the method.
    pub fn name(self) -> &'static str {
        match self {
            MethodId::A => "method A",
            MethodId::B => "method B",
            MethodId::C1 => "method C-1",
            MethodId::C2 => "method C-2",
            MethodId::C3 => "method C-3",
        }
    }
}

impl std::fmt::Display for MethodId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full experiment configuration (Tables 1 + 2 plus the cluster shape).
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentSetup {
    /// Per-node machine parameters (Table 2).
    pub machine: MachineParams,
    /// Interconnect model (measured Myrinet in the paper).
    pub network: NetworkModel,
    /// Master nodes (1 in all paper runs; >1 is the paper's remark on
    /// master overload, our ablation).
    pub n_masters: usize,
    /// Slave nodes (10 in all paper runs).
    pub n_slaves: usize,
    /// Keys in the index (Table 1: 327 kilo).
    pub n_index_keys: usize,
    /// Message/batch size in bytes (Figure 3 x-axis; Table 3 uses 128 KB).
    pub batch_bytes: usize,
    /// Fraction of the target cache the Zhou–Ross subtrees may fill
    /// (leaves room for the buffers; 0.5 reproduces the paper's 320 KB
    /// subtrees under a 512 KB L2).
    pub fill_factor: f64,
    /// Enable TLB modelling (the paper ignores TLB misses; ablation).
    pub model_tlb: bool,
    /// Model the cache pollution of the *next* message/batch being
    /// received while the current one is processed (the paper's §4.1
    /// overlapped-communication contention). On by default; the
    /// `ablation_contention` binary switches it off to isolate the effect.
    pub model_receive_pollution: bool,
    /// Cap on the bytes a master may hold buffered across all outgoing
    /// slave buffers before force-flushing everything (a bounded MPI send
    /// pool). `None` (the default) is strict batching: each buffer flushes
    /// only when it reaches `batch_bytes`. Any real implementation has
    /// *some* bound — the paper's cluster cannot have sent true 4 MB
    /// messages (each slave's whole share is 3.2 MB), which is how its
    /// Figure 3 stays flat at nominal batch sizes our strict model cannot
    /// reach. The `ablation_window` binary demonstrates this.
    pub max_outstanding_bytes: Option<usize>,
    /// Optional finite-capacity switch backplane. `None` (the default)
    /// reproduces the paper's Appendix A assumption 1 — "aggregate network
    /// bandwidth is unlimited"; the `ablation_backplane` binary bounds it.
    pub switch: Option<dini_cluster::SwitchModel>,
}

impl ExperimentSetup {
    /// The paper's §4 configuration: Pentium III nodes, measured Myrinet,
    /// 1 master + 10 slaves, 327 680 keys, 128 KB batches.
    pub fn paper() -> Self {
        Self {
            machine: MachineParams::pentium_iii(),
            network: NetworkModel::myrinet(),
            n_masters: 1,
            n_slaves: 10,
            n_index_keys: 327_680,
            batch_bytes: 128 * 1024,
            fill_factor: 0.5,
            model_tlb: false,
            model_receive_pollution: true,
            max_outstanding_bytes: None,
            switch: None,
        }
    }

    /// A scaled-down configuration for fast tests: same shape (tree larger
    /// than L2, partitions cache-resident), ~20× less work.
    pub fn small() -> Self {
        Self { n_index_keys: 65_536, batch_bytes: 16 * 1024, ..Self::paper() }
    }

    /// Total nodes (the paper's 11).
    pub fn n_nodes(&self) -> usize {
        self.n_masters + self.n_slaves
    }

    /// Keys per batch (4-byte keys).
    pub fn batch_keys(&self) -> usize {
        (self.batch_bytes / 4).max(1)
    }

    /// With a different batch size (Figure 3 sweeps this).
    pub fn with_batch_bytes(mut self, bytes: usize) -> Self {
        self.batch_bytes = bytes;
        self
    }

    /// Keys owned by slave `j` under equal-size range partitioning.
    pub fn partition_keys(&self) -> usize {
        self.n_index_keys.div_ceil(self.n_slaves)
    }

    /// Validate internal consistency (panics on nonsense configs).
    pub fn validate(&self) {
        self.machine.validate();
        assert!(self.n_masters >= 1, "need at least one master");
        assert!(self.n_slaves >= 1, "need at least one slave");
        assert!(self.batch_bytes >= 4, "a batch must hold at least one key");
        assert!(self.n_index_keys >= self.n_slaves, "each slave needs at least one key");
        assert!(self.fill_factor > 0.0 && self.fill_factor <= 1.0);
    }

    /// Derive the Table 1 quantities by actually building the structures.
    pub fn table1(&self, index_keys: &[u32]) -> Table1 {
        let m = &self.machine;
        let k = m.keys_per_node();
        let le = m.leaf_entries_per_line();
        let tree = CsbTree::with_leaf_entries(
            index_keys,
            k,
            le,
            m.l2.line_bytes,
            1 << 30,
            m.comp_cost_node_ns,
        );
        let cuts = SubtreeCuts::for_capacity(&tree, m.l2.size_bytes, self.fill_factor);
        let t = tree.n_levels();
        // Root subtree: the top segment. Lower subtrees: the largest
        // subtree rooted at the second segment's first level.
        let root_levels = cuts.segment_levels(0, t);
        let root_subtree_bytes = tree.subtree_bytes(0, root_levels.len());
        let subtree_bytes = if cuts.n_segments() > 1 {
            let seg = cuts.segment_levels(1, t);
            tree.subtree_bytes(tree.levels()[seg.start].start, seg.len())
        } else {
            root_subtree_bytes
        };
        // Slave partition tree (Method C-1): L levels.
        let part = self.partition_keys();
        let part_tree = CsbTree::with_leaf_entries(
            &index_keys[..part.min(index_keys.len())],
            k,
            le,
            m.l2.line_bytes,
            0,
            0.0,
        );
        Table1 {
            n_keys: index_keys.len(),
            key_bytes: m.word_bytes,
            tree_bytes: tree.footprint_bytes(),
            t_levels: t,
            l_levels: part_tree.n_levels(),
            node_bytes: m.l2.line_bytes,
            subtree_bytes,
            root_subtree_bytes,
            keys_per_node: k,
        }
    }
}

/// The derived index-structure setup (the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1 {
    /// Number of keys on the sorted array (327 680).
    pub n_keys: usize,
    /// Search key size in bytes (4).
    pub key_bytes: u32,
    /// Index tree size in bytes (paper: 3.2 MB; see EXPERIMENTS.md on the
    /// leaf-payload difference).
    pub tree_bytes: u64,
    /// Total levels `T` of the tree (7).
    pub t_levels: usize,
    /// Levels `L` of one slave's partition tree (6).
    pub l_levels: usize,
    /// Node size in bytes (= L2 line; 32).
    pub node_bytes: u64,
    /// Size of a lower (non-root) subtree in the Zhou–Ross decomposition
    /// (paper: 320 KB).
    pub subtree_bytes: u64,
    /// Size of the root subtree (paper: 44 bytes — a single node).
    pub root_subtree_bytes: u64,
    /// Keys per tree node (7).
    pub keys_per_node: u32,
}

/// Build the simulated memory for one node under `setup`.
pub fn node_memory(setup: &ExperimentSetup) -> dini_cache_sim::SimMemory {
    let mem = dini_cache_sim::SimMemory::new(setup.machine.clone());
    if setup.model_tlb {
        mem.with_tlb()
    } else {
        mem
    }
}

/// Charge a streaming touch of `len` bytes at `addr` to `mem`
/// (convenience used by the method actors for buffer traffic).
#[inline]
pub fn stream<M: MemoryModel>(mem: &mut M, addr: u64, len: u32, write: bool) -> f64 {
    use dini_cache_sim::AccessKind;
    mem.touch(addr, len, if write { AccessKind::StreamWrite } else { AccessKind::StreamRead })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dini_workload::gen_sorted_unique_keys;

    #[test]
    fn paper_setup_matches_table_1() {
        let s = ExperimentSetup::paper();
        s.validate();
        let keys = gen_sorted_unique_keys(s.n_index_keys, 1);
        let t1 = s.table1(&keys);
        assert_eq!(t1.n_keys, 327_680);
        assert_eq!(t1.key_bytes, 4);
        assert_eq!(t1.t_levels, 7, "paper T = 7");
        assert_eq!(t1.l_levels, 6, "paper L = 6");
        assert_eq!(t1.node_bytes, 32);
        assert_eq!(t1.keys_per_node, 7);
        // Paper: subtrees (except the root's) are 320 KB; ours must land in
        // the same quarter-of-L2-to-full-L2 band.
        assert!(
            t1.subtree_bytes > 128 * 1024 && t1.subtree_bytes <= 512 * 1024,
            "subtree {} bytes",
            t1.subtree_bytes
        );
        // Root subtree is tiny (paper: 44 bytes ≈ one node).
        assert!(t1.root_subtree_bytes <= 4 * t1.node_bytes, "{}", t1.root_subtree_bytes);
        // Tree is several MB — far larger than the 512 KB L2.
        assert!(t1.tree_bytes > 3 * 512 * 1024);
    }

    #[test]
    fn batch_keys_rounds_down() {
        let s = ExperimentSetup::paper().with_batch_bytes(10);
        assert_eq!(s.batch_keys(), 2);
    }

    #[test]
    fn partition_fits_slave_l2() {
        // The premise of Method C: each partition fits the slave's cache.
        let s = ExperimentSetup::paper();
        let part_bytes = s.partition_keys() as u64 * 4;
        assert!(part_bytes <= s.machine.l2.size_bytes / 2, "C-3 partition {part_bytes} B");
    }

    #[test]
    fn method_id_properties() {
        assert!(MethodId::C3.is_distributed());
        assert!(!MethodId::A.is_distributed());
        assert_eq!(MethodId::ALL.len(), 5);
        assert_eq!(MethodId::C2.to_string(), "method C-2");
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn zero_slaves_rejected() {
        let s = ExperimentSetup { n_slaves: 0, ..ExperimentSetup::paper() };
        s.validate();
    }
}
