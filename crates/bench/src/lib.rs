//! Shared harness utilities for the experiment binaries.
//!
//! Every `src/bin/*` target regenerates one of the paper's tables or
//! figures (or one of our ablations). Conventions:
//!
//! * machine-readable CSV goes to **stdout**;
//! * human-readable tables and progress notes go to **stderr**;
//! * `--quick` shrinks the workload ~8× for smoke runs;
//! * workloads are seeded and deterministic (same numbers every run).

#![warn(missing_docs)]

use std::fmt::Write as _;

/// Minimal flag parser: `has_flag("--quick")`.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Minimal option parser: `opt_value("--keys")` for `--keys 1048576` or
/// `--keys=1048576`.
pub fn opt_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return args.get(i + 1).cloned();
        }
        if let Some(rest) = a.strip_prefix(&format!("{name}=")) {
            return Some(rest.to_owned());
        }
    }
    None
}

/// Parse an integer option with a default.
pub fn opt_usize(name: &str, default: usize) -> usize {
    opt_value(name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name} expects an integer, got {v}")))
        .unwrap_or(default)
}

/// Number of search keys for an experiment: the paper's 2^23, `--quick`
/// drops to 2^20, `--keys N` overrides.
pub fn search_key_count() -> usize {
    let default = if has_flag("--quick") { 1 << 20 } else { 1 << 23 };
    opt_usize("--keys", default)
}

/// Render an aligned text table (for stderr).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
        }
        out.push('\n');
    };
    line(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&mut out, &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Pretty byte sizes for batch axes ("8 KB", "4 MB").
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1024 * 1024 && b.is_multiple_of(1024 * 1024) {
        format!("{} MB", b / (1024 * 1024))
    } else if b >= 1024 {
        format!("{} KB", b / 1024)
    } else {
        format!("{b} B")
    }
}

/// The paper's Figure 3 batch-size sweep: 8 KB to 4 MB, doubling.
pub fn figure3_batches() -> Vec<usize> {
    (0..10).map(|i| (8 * 1024) << i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_axis_matches_paper() {
        let b = figure3_batches();
        assert_eq!(b.len(), 10);
        assert_eq!(b[0], 8 * 1024);
        assert_eq!(b[9], 4 * 1024 * 1024);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(8 * 1024), "8 KB");
        assert_eq!(fmt_bytes(4 * 1024 * 1024), "4 MB");
        assert_eq!(fmt_bytes(100), "100 B");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("a  bb"), "got {t:?}");
        assert!(t.lines().count() == 3);
    }
}
