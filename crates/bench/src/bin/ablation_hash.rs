//! **Ablation: the hash index the paper excludes** (paper §1).
//!
//! "We do not consider hash arrays for the index data structure." Why
//! not? A hash table answers only exact-match lookups — it cannot compute
//! the rank of an *absent* key, which is the whole routing problem. But
//! on a workload of purely *present* keys it is the structure to beat.
//! We quantify both sides on the simulated Pentium III: simulated cost
//! per lookup for present keys (hash's home turf) and the fraction of
//! uniform queries a hash index simply cannot answer.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_hash -- --quick
//! ```

use dini_bench::{render_table, search_key_count};
use dini_cache_sim::{MachineParams, SimMemory};
use dini_core::{standard_workload, ExperimentSetup};
use dini_index::{CsbTree, HashIndex, RankIndex, SortedArray};

/// One structure's probe routine: key in, simulated nanoseconds out.
type ProbeFn = Box<dyn FnMut(u32, &mut SimMemory) -> f64>;

fn main() {
    let n_search = (search_key_count() / 8).max(1 << 17);
    let setup = ExperimentSetup::paper();
    let (index_keys, uniform_queries) = standard_workload(&setup, n_search);
    let m = &setup.machine;

    // Present-key workload: sample the index itself (hash's best case).
    let present: Vec<u32> = (0..n_search)
        .map(|i| index_keys[(i.wrapping_mul(2_654_435_761)) % index_keys.len()])
        .collect();

    let hash = HashIndex::new(&index_keys, 1 << 30, m.cmp_cost_ns);
    let array = SortedArray::new(index_keys.clone(), 1 << 28, m.cmp_cost_ns);
    let tree = CsbTree::with_leaf_entries(
        &index_keys,
        m.keys_per_node(),
        m.leaf_entries_per_line(),
        m.l2.line_bytes,
        1 << 26,
        m.comp_cost_node_ns,
    );

    let mut rows = Vec::new();
    println!("structure,footprint_bytes,present_ns_per_key,l2_misses_per_key");

    let mut run = |name: &str, footprint: u64, mut f: ProbeFn| {
        let mut mem = SimMemory::new(MachineParams::pentium_iii());
        // Warm pass, then measure steady state.
        for &k in present.iter().take(n_search / 4) {
            f(k, &mut mem);
        }
        mem.reset_stats();
        let mut ns = 0.0;
        for &k in &present {
            ns += f(k, &mut mem);
        }
        let per_key = ns / present.len() as f64;
        let mpk = mem.stats().memory_accesses as f64 / present.len() as f64;
        rows.push(vec![
            name.to_owned(),
            format!("{:.1} MB", footprint as f64 / (1024.0 * 1024.0)),
            format!("{per_key:.1} ns"),
            format!("{mpk:.3}"),
        ]);
        println!("{name},{footprint},{per_key:.2},{mpk:.4}");
    };

    {
        let h = hash.clone();
        run("hash (open addressing)", h.footprint_bytes(), Box::new(move |k, mem| h.get(k, mem).1));
    }
    {
        let a = array.clone();
        run("sorted array", a.footprint_bytes(), Box::new(move |k, mem| a.rank(k, mem).1));
    }
    {
        let t = tree.clone();
        run("CSB+ tree", t.footprint_bytes(), Box::new(move |k, mem| t.rank(k, mem).1));
    }

    // The capability gap: uniform routing queries a hash cannot answer.
    let mut null = dini_cache_sim::NullMemory;
    let unanswerable =
        uniform_queries.iter().filter(|&&q| hash.get(q, &mut null).0.is_none()).count();
    let frac = unanswerable as f64 / uniform_queries.len() as f64;

    eprint!(
        "{}",
        render_table(&["structure", "footprint", "present-key cost", "L2 misses/key"], &rows)
    );
    eprintln!(
        "\nuniform routing queries the hash cannot answer at all: {:.2} % \
         ({unanswerable}/{})",
        frac * 100.0,
        uniform_queries.len()
    );
    println!("hash_unanswerable_fraction,{frac:.6}");
    eprintln!(
        "(the index holds 327 k of 4.3 G possible keys, so ~100 % of uniform \
         queries are absent keys — rank queries, which only the sorted \
         structures answer; this is why the paper excludes hashing)"
    );
}
