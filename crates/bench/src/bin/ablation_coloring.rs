//! **Ablation: cache coloring** (paper §4.1).
//!
//! "For very large batch size, performance improvement can still be
//! observed even without cache coloring" — the paper name-drops the
//! classic mitigation for its own 64 → 128 KB contention dip (message
//! buffers and the resident partition fighting over L2 sets) without
//! evaluating it. We do: a slave-shaped working set — a cache-resident
//! partition array plus streaming message buffers — run with and without
//! page coloring, sweeping the buffer (batch) size through the dip.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_coloring -- --quick
//! ```

use dini_bench::{fmt_bytes, render_table, search_key_count};
use dini_cache_sim::{AccessKind, MachineParams, MemoryModel, PageMapper, SimMemory};
use dini_core::standard_workload;
use dini_core::ExperimentSetup;
use dini_index::{RankIndex, SortedArray};

/// One slave's steady-state loop: receive a message (stream + pollution),
/// look its keys up in the partition, write results. Returns ns/key.
fn slave_loop(mem: &mut SimMemory, part: &SortedArray, queries: &[u32], batch_keys: usize) -> f64 {
    let msg_base = 1 << 30;
    let res_base: u64 = (1 << 30) + (1 << 24);
    let mut ns = 0.0;
    for chunk in queries.chunks(batch_keys) {
        let bytes = (chunk.len() * 4) as u32;
        // Next message arriving by DMA while we work.
        mem.touch(msg_base + bytes as u64, bytes, AccessKind::Pollute);
        ns += mem.touch(msg_base, bytes, AccessKind::StreamRead);
        for &q in chunk {
            ns += part.rank(q, mem).1;
        }
        ns += mem.touch(res_base, bytes, AccessKind::StreamWrite);
    }
    ns / queries.len() as f64
}

fn main() {
    let n_search = (search_key_count() / 4).max(1 << 18);
    let setup = ExperimentSetup::paper();
    let (index_keys, queries) = standard_workload(&setup, n_search);
    // One slave's working set sized like the paper's contention analysis:
    // a ~320 KB resident structure (§4.1 uses the 320 KB subtree), so that
    // current message + next message + structure pass 512 KB at 128 KB
    // batches — the paper's dip arithmetic.
    let part_keys: Vec<u32> = index_keys.iter().step_by(4).copied().collect();
    let part_base = 1 << 20;
    let part = SortedArray::new(part_keys, part_base, setup.machine.cmp_cost_ns);
    let part_bytes = part.footprint_bytes();

    let machine = MachineParams::pentium_iii();
    let n_colors = PageMapper::colors_of(&machine.l2, machine.page_bytes);
    // Partition keeps 12 of 16 colors; buffers share the remaining 4.
    let part_colors = (n_colors * 3) / 4;

    println!("batch_bytes,plain_ns_per_key,colored_ns_per_key,plain_misses,colored_misses");
    let mut rows = Vec::new();
    for batch in [32 * 1024usize, 64 * 1024, 128 * 1024, 256 * 1024] {
        let batch_keys = batch / 4;

        let mut plain = SimMemory::new(machine.clone());
        let plain_ns = slave_loop(&mut plain, &part, &queries, batch_keys);
        let plain_mpk = plain.stats().memory_accesses as f64 / queries.len() as f64;

        let mut mapper = PageMapper::new(machine.page_bytes, n_colors);
        for (i, page) in (0..part_bytes).step_by(machine.page_bytes as usize).enumerate() {
            mapper.assign(part_base + page, machine.page_bytes, (i as u32) % part_colors);
        }
        for (i, page) in (0..(batch as u64) * 2).step_by(machine.page_bytes as usize).enumerate() {
            mapper.assign(
                (1 << 30) + page,
                machine.page_bytes,
                part_colors + (i as u32) % (n_colors - part_colors),
            );
        }
        let mut colored = SimMemory::new(machine.clone()).with_page_mapper(mapper);
        let colored_ns = slave_loop(&mut colored, &part, &queries, batch_keys);
        let colored_mpk = colored.stats().memory_accesses as f64 / queries.len() as f64;

        rows.push(vec![
            fmt_bytes(batch),
            format!("{plain_ns:.1} ns"),
            format!("{colored_ns:.1} ns"),
            format!("{plain_mpk:.3}"),
            format!("{colored_mpk:.3}"),
        ]);
        println!("{batch},{plain_ns:.2},{colored_ns:.2},{plain_mpk:.4},{colored_mpk:.4}");
    }
    eprint!(
        "{}",
        render_table(
            &["batch", "plain ns/key", "colored ns/key", "plain misses/key", "colored misses/key"],
            &rows
        )
    );
    eprintln!(
        "\n(coloring pins the partition into {part_colors}/{n_colors} of the L2's page \
         colors and confines message buffers to the rest: the partition can \
         no longer be evicted by buffer traffic, flattening the contention \
         dip the paper attributes to exactly this interference)"
    );
}
