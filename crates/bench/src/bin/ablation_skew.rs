//! **Ablation: skewed query distributions** (beyond-paper).
//!
//! The paper assumes uniformly distributed search keys, which balances
//! Method C's slaves perfectly. Zipf and hotspot workloads concentrate
//! queries on few partitions: the hot slave saturates while the rest
//! idle, eroding the distributed advantage — the load-balance caveat the
//! paper's Methods A/B comparison hand-waves away.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_skew -- --quick
//! ```

use dini_bench::{render_table, search_key_count};
use dini_core::{run_method, ExperimentSetup, MethodId, INDEX_SEED, SEARCH_SEED};
use dini_workload::{gen_sorted_unique_keys, KeyDistribution, KeyGen};

fn main() {
    let n_search = search_key_count();
    let setup = ExperimentSetup::paper();
    let index_keys = gen_sorted_unique_keys(setup.n_index_keys, INDEX_SEED);

    let workloads: Vec<(&str, KeyDistribution)> = vec![
        ("uniform (paper)", KeyDistribution::Uniform),
        ("zipf s=0.8", KeyDistribution::Zipf { n_buckets: 1024, s: 0.8 }),
        ("zipf s=1.2", KeyDistribution::Zipf { n_buckets: 1024, s: 1.2 }),
        ("hotspot 1/16", KeyDistribution::Clustered { lo: 0, hi: u32::MAX / 16 }),
    ];

    eprintln!("Skew ablation — Method C-3 vs A, {n_search} keys, 128 KB batches\n");
    println!("workload,c3_s,a_s,speedup,slave_idle_mean");
    let mut rows = Vec::new();
    for (name, dist) in workloads {
        let search_keys = KeyGen::new(SEARCH_SEED, dist).take(n_search);
        let c3 = run_method(MethodId::C3, &setup, &index_keys, &search_keys);
        let a = run_method(MethodId::A, &setup, &index_keys, &search_keys);
        let speedup = a.search_time_s / c3.search_time_s;
        rows.push(vec![
            name.to_owned(),
            format!("{:.4} s", c3.search_time_s),
            format!("{:.4} s", a.search_time_s),
            format!("{speedup:.2}x"),
            format!("{:.0} %", c3.slave_idle * 100.0),
        ]);
        println!(
            "{},{:.5},{:.5},{speedup:.3},{:.4}",
            name.replace(',', ";"),
            c3.search_time_s,
            a.search_time_s,
            c3.slave_idle
        );
    }
    eprint!(
        "{}",
        render_table(&["workload", "C-3 time", "A time", "C-3 speedup", "slave idle"], &rows)
    );
    eprintln!("\n(skew funnels queries to few slaves: idle rises, the speedup shrinks)");
}
