//! **Ablation: is load balancing really free?** (paper §4.1).
//!
//! The paper's comparison "gives the benefit of doubt to Methods A and B
//! … the overhead of load balancing is assumed to be zero", normalising
//! one-node runs by 11. We run the deployment that assumption idealises —
//! a dispatcher actually routing batches to replicas over the simulated
//! Myrinet, with three load-balancing policies — and report the honest
//! makespan next to the free-normalisation ideal and Method C-3.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_dispatch -- --quick
//! ```

use dini_bench::{fmt_bytes, render_table, search_key_count};
use dini_core::{
    run_method, run_replicated_distributed, standard_workload, ExperimentSetup, LoadBalance,
    MethodId, ReplicaEngine,
};

fn main() {
    let n_search = search_key_count();
    let base = ExperimentSetup::paper();
    let (index_keys, search_keys) = standard_workload(&base, n_search);

    println!("config,batch_bytes,search_time_s,slave_idle,msgs");
    let mut rows = Vec::new();
    for &batch in &[32 * 1024usize, 128 * 1024] {
        let setup = base.clone().with_batch_bytes(batch);
        let ideal_a = run_method(MethodId::A, &setup, &index_keys, &search_keys);
        let ideal_b = run_method(MethodId::B, &setup, &index_keys, &search_keys);
        let c3 = run_method(MethodId::C3, &setup, &index_keys, &search_keys);

        let mut emit = |name: &str, time_s: f64, idle: f64, msgs: u64| {
            rows.push(vec![
                name.to_owned(),
                fmt_bytes(batch),
                format!("{time_s:.4} s"),
                format!("{:.0} %", idle * 100.0),
                msgs.to_string(),
            ]);
            println!("{name},{batch},{time_s:.5},{idle:.4},{msgs}");
        };
        emit("A ideal (free LB, /11)", ideal_a.search_time_s, 0.0, 0);
        emit("B ideal (free LB, /11)", ideal_b.search_time_s, 0.0, 0);
        for (name, engine, policy) in [
            ("A + round-robin dispatch", ReplicaEngine::Naive, LoadBalance::RoundRobin),
            ("A + random dispatch", ReplicaEngine::Naive, LoadBalance::Random { seed: 5 }),
            ("A + work-pull dispatch", ReplicaEngine::Naive, LoadBalance::WorkPull { credits: 2 }),
            ("B + round-robin dispatch", ReplicaEngine::Buffered, LoadBalance::RoundRobin),
        ] {
            let r = run_replicated_distributed(&setup, engine, policy, &index_keys, &search_keys);
            emit(name, r.search_time_s, r.slave_idle, r.msgs);
        }
        emit("C-3 (measured, honest)", c3.search_time_s, c3.slave_idle, c3.msgs);
    }
    eprint!("{}", render_table(&["configuration", "batch", "time", "replica idle", "msgs"], &rows));
    eprintln!(
        "\n(the gap between each \"ideal\" row and its dispatched rows is exactly \
         the load-balancing + networking cost the paper assumed to be zero; \
         C-3 needs no such benefit of doubt)"
    );
}
