//! **Ablation: bounded aggregate network bandwidth** (paper Appendix A,
//! assumption 1).
//!
//! The model assumes "aggregate network bandwidth is unlimited". Method C
//! funnels every query through the master's TX link *and* the switch
//! fabric, so it is the method most exposed if that assumption fails. We
//! sweep a shared-backplane capacity from 1× the link bandwidth (a hub)
//! up to 16× (full crossbar for the 11-node cluster ≈ unlimited) and
//! report Method C-3's makespan.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_backplane -- --quick
//! ```

use dini_bench::{render_table, search_key_count};
use dini_cluster::SwitchModel;
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let base = ExperimentSetup::paper().with_batch_bytes(128 * 1024);
    let (index_keys, search_keys) = standard_workload(&base, n_search);

    let unlimited = run_method(MethodId::C3, &base, &index_keys, &search_keys);

    println!("backplane_factor,search_time_s,slowdown_vs_unlimited");
    let mut rows = vec![vec![
        "unlimited (paper)".to_owned(),
        format!("{:.4} s", unlimited.search_time_s),
        "1.00x".to_owned(),
    ]];
    println!("inf,{:.5},1.0", unlimited.search_time_s);

    for factor in [16.0, 8.0, 4.0, 2.0, 1.0] {
        let setup = ExperimentSetup {
            switch: Some(SwitchModel::with_capacity_factor(base.network.bandwidth, factor)),
            ..base.clone()
        };
        let s = run_method(MethodId::C3, &setup, &index_keys, &search_keys);
        let slow = s.search_time_s / unlimited.search_time_s;
        rows.push(vec![
            format!("{factor}x link"),
            format!("{:.4} s", s.search_time_s),
            format!("{slow:.2}x"),
        ]);
        println!("{factor},{:.5},{slow:.4}", s.search_time_s);
    }
    eprint!("{}", render_table(&["backplane", "C-3 time", "slowdown"], &rows));
    eprintln!(
        "\n(a crossbar-class switch — Myrinet's design — justifies the paper's \
         assumption; a hub-class shared segment does not)"
    );
}
