//! **Ablation: Pentium 4 cache geometry** (paper §2.2).
//!
//! The paper argues its advantage *grows* on newer parts: "The Pentium 4
//! has a 128 byte cache line, with a corresponding degradation factor of
//! 32 in the worst case" for random word accesses. Longer lines mean a
//! bigger miss penalty per useful word for Method A, while Method C keeps
//! its partitions resident. We run the comparison on both machines.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_p4 -- --quick
//! ```

use dini_bench::{render_table, search_key_count};
use dini_cache_sim::MachineParams;
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let machines = [MachineParams::pentium_iii(), MachineParams::pentium_4()];

    eprintln!("Machine ablation — A vs C-3, {n_search} keys, 128 KB batches\n");
    println!("machine,method,search_time_s,l2_misses_per_key");
    let mut rows = Vec::new();
    for machine in machines {
        let setup = ExperimentSetup { machine: machine.clone(), ..ExperimentSetup::paper() };
        let (index_keys, search_keys) = standard_workload(&setup, n_search);
        let mut times = Vec::new();
        for method in [MethodId::A, MethodId::C3] {
            let s = run_method(method, &setup, &index_keys, &search_keys);
            rows.push(vec![
                machine.name.clone(),
                method.name().to_owned(),
                format!("{:.4} s", s.search_time_s),
                format!("{:.3}", s.l2_misses_per_key()),
            ]);
            println!(
                "{},{},{:.5},{:.4}",
                machine.name.replace(',', ";"),
                method.name().replace(' ', "_"),
                s.search_time_s,
                s.l2_misses_per_key()
            );
            times.push(s.search_time_s);
        }
        eprintln!("{}: C-3 speedup over A = {:.2}x", machine.name, times[0] / times[1]);
    }
    eprintln!();
    eprint!("{}", render_table(&["machine", "method", "time", "L2 miss/key"], &rows));
}
