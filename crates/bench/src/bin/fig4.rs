//! Regenerates **Figure 4** ("Future Trends Based on Model"): the
//! analytical model's per-key cost for Methods A, B, and C-3 over years
//! 0–5 under the paper's §4.2 technology assumptions (CPU 2×/18 months,
//! network 2×/3 years, per-processor memory bandwidth +20 %/year, memory
//! latency flat).
//!
//! The paper's claim: the B : C-3 ratio grows from ~2× at year 0 to ~10×
//! at year 5.
//!
//! ```text
//! cargo run -p dini-bench --release --bin fig4
//! cargo run -p dini-bench --release --bin fig4 -- --horizon 10
//! ```

use dini_bench::{opt_usize, render_table};
use dini_model::trends::trend_series;
use dini_model::ModelParams;

fn main() {
    let horizon = opt_usize("--horizon", 5) as u32;
    let p = ModelParams::paper();
    let series = trend_series(&p, horizon);

    eprintln!("Figure 4 — future trends (model), 128 KB batches, 2^23 keys\n");
    println!("year,a_ns_per_key,b_ns_per_key,c3_ns_per_key,ratio_b_over_c3,ratio_a_over_c3");
    let mut rows = Vec::new();
    for t in &series {
        let c = t.costs;
        rows.push(vec![
            format!("{:.0}", t.year),
            format!("{:.2}", c.a),
            format!("{:.2}", c.b),
            format!("{:.2}", c.c3),
            format!("{:.1}x", c.b / c.c3),
            format!("{:.1}x", c.a / c.c3),
        ]);
        println!(
            "{:.0},{:.4},{:.4},{:.4},{:.3},{:.3}",
            t.year,
            c.a,
            c.b,
            c.c3,
            c.b / c.c3,
            c.a / c.c3
        );
    }
    eprint!(
        "{}",
        render_table(&["year", "A ns/key", "B ns/key", "C-3 ns/key", "B:C-3", "A:C-3"], &rows)
    );
    eprintln!("\n(paper: B:C-3 grows from ~2x at year 0 to ~10x at year 5)");
}
