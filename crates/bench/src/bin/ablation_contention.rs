//! **Ablation: overlapped-receive cache contention** (paper §4.1).
//!
//! The paper attributes the 64 → 128 KB performance dip to the L2 seeing
//! "the 128 KB of query lookups for the current message, 128 KB of the
//! next message being received, and a 320 KB subtree". This ablation runs
//! Method B (the structure whose resident subtree is that large) and
//! Method C-2 across the batch sweep with the overlapped-receive pollution
//! model on and off, isolating how much of the degradation is contention.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_contention -- --quick
//! ```

use dini_bench::{figure3_batches, fmt_bytes, render_table, search_key_count};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let base = ExperimentSetup::paper();
    let (index_keys, search_keys) = standard_workload(&base, n_search);

    eprintln!("Contention ablation — {n_search} keys; times in seconds\n");
    println!("batch_bytes,method,polluted_s,clean_s,slowdown_pct");
    let mut rows = Vec::new();
    for &batch in figure3_batches().iter().take(8) {
        for method in [MethodId::B, MethodId::C2] {
            let polluted = run_method(
                method,
                &ExperimentSetup {
                    batch_bytes: batch,
                    model_receive_pollution: true,
                    ..base.clone()
                },
                &index_keys,
                &search_keys,
            );
            let clean = run_method(
                method,
                &ExperimentSetup {
                    batch_bytes: batch,
                    model_receive_pollution: false,
                    ..base.clone()
                },
                &index_keys,
                &search_keys,
            );
            let slowdown = (polluted.search_time_s / clean.search_time_s - 1.0) * 100.0;
            rows.push(vec![
                fmt_bytes(batch),
                method.name().to_owned(),
                format!("{:.4}", polluted.search_time_s),
                format!("{:.4}", clean.search_time_s),
                format!("{slowdown:+.1} %"),
            ]);
            println!(
                "{batch},{},{:.5},{:.5},{slowdown:.2}",
                method.name().replace(' ', "_"),
                polluted.search_time_s,
                clean.search_time_s
            );
        }
    }
    eprint!(
        "{}",
        render_table(&["batch", "method", "with pollution", "without", "slowdown"], &rows)
    );
    eprintln!(
        "\n(the paper's dip: contention begins once 2 x batch + resident structure > 512 KB L2)"
    );
}
