//! **Ablation: interconnect choice** (paper §2.2).
//!
//! The paper argues batching amortises latency on Myrinet around 10 KB
//! messages, but "for Gigabit Ethernet, one may need to batch a message as
//! large as 200 KB for the transmission time to dominate the latency". We
//! sweep Method C-3 over the three interconnects the paper names (Myrinet,
//! Gigabit Ethernet, Fast Ethernet) and report where each network's curve
//! settles — and where C-3 stops beating the network-free Method A.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_network -- --quick
//! ```

use dini_bench::{figure3_batches, fmt_bytes, render_table, search_key_count};
use dini_cluster::NetworkModel;
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let base = ExperimentSetup::paper();
    let (index_keys, search_keys) = standard_workload(&base, n_search);
    let a_time = run_method(MethodId::A, &base, &index_keys, &search_keys).search_time_s;

    let nets =
        [NetworkModel::myrinet(), NetworkModel::gigabit_ethernet(), NetworkModel::fast_ethernet()];

    eprintln!(
        "Network ablation — Method C-3, {n_search} keys (Method A reference: {a_time:.4} s)\n"
    );
    println!("network,batch_bytes,search_time_s,beats_a");
    let mut rows = Vec::new();
    for net in nets {
        for &batch in figure3_batches().iter().take(8) {
            let setup = ExperimentSetup { network: net, batch_bytes: batch, ..base.clone() };
            let s = run_method(MethodId::C3, &setup, &index_keys, &search_keys);
            let beats = s.search_time_s < a_time;
            rows.push(vec![
                net.name.to_owned(),
                fmt_bytes(batch),
                format!("{:.4} s", s.search_time_s),
                if beats { "yes".into() } else { "no".into() },
            ]);
            println!("{},{batch},{:.5},{beats}", net.name.replace(',', ";"), s.search_time_s);
        }
    }
    eprint!("{}", render_table(&["network", "batch", "C-3 time", "beats A?"], &rows));
    eprintln!(
        "\n(paper: Myrinet amortises by ~10 KB; GigE needs ~200 KB; a slow \
         network can lose to local lookups outright)"
    );
}
