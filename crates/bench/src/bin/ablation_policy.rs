//! **Ablation: cache replacement policy** (beyond-paper).
//!
//! The paper's contention argument leans on LRU ("to the extent that a
//! cache eviction algorithm approximates an LRU algorithm..."). Real L2s
//! run pseudo-LRU or near-random policies. We re-run Method A and Method C-3
//! under LRU, FIFO, random, and tree-PLRU replacement and report how much
//! the headline comparison moves.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_policy -- --quick
//! ```

use dini_bench::{render_table, search_key_count};
use dini_cache_sim::{MachineParams, ReplacementPolicy};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let policies = [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("random", ReplacementPolicy::Random),
        ("tree-PLRU", ReplacementPolicy::TreePlru),
    ];

    eprintln!("Replacement-policy ablation — {n_search} keys, 128 KB batches\n");
    println!("policy,a_s,c3_s,speedup,a_l2_misses_per_key");
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let mut machine = MachineParams::pentium_iii();
        machine.l1.policy = policy;
        machine.l2.policy = policy;
        let setup = ExperimentSetup { machine, ..ExperimentSetup::paper() };
        let (index_keys, search_keys) = standard_workload(&setup, n_search);
        let a = run_method(MethodId::A, &setup, &index_keys, &search_keys);
        let c3 = run_method(MethodId::C3, &setup, &index_keys, &search_keys);
        let speedup = a.search_time_s / c3.search_time_s;
        rows.push(vec![
            name.to_owned(),
            format!("{:.4} s", a.search_time_s),
            format!("{:.4} s", c3.search_time_s),
            format!("{speedup:.2}x"),
            format!("{:.3}", a.l2_misses_per_key()),
        ]);
        println!(
            "{name},{:.5},{:.5},{speedup:.3},{:.4}",
            a.search_time_s,
            c3.search_time_s,
            a.l2_misses_per_key()
        );
    }
    eprint!(
        "{}",
        render_table(&["policy", "A time", "C-3 time", "C-3 speedup", "A L2 miss/key"], &rows)
    );
    eprintln!(
        "\n(the C-3 advantage is robust to the eviction policy — its working set simply fits)"
    );
}
