//! **Figure 3 companion: response time vs batch size** (paper §4.1).
//!
//! The paper argues Method C "is capable of simultaneously satisfying
//! severe constraints in both throughput and response time", reading the
//! claim off Figure 3 (C-2/C-3 reach a target throughput at 64 KB batches
//! where B needs 256 KB — and smaller batches mean faster responses).
//! This binary makes response time a measured quantity: for each batch
//! size it reports throughput *and* the mean / p99 batch response time
//! (dispatch at the master → results delivered at the target).
//!
//! ```text
//! cargo run -p dini-bench --release --bin fig_response -- --quick
//! ```

use dini_bench::{figure3_batches, fmt_bytes, render_table, search_key_count};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let base = ExperimentSetup::paper();
    let (index_keys, search_keys) = standard_workload(&base, n_search);

    println!("method,batch_bytes,search_time_s,rtt_mean_us,rtt_p99_us");
    let mut rows = Vec::new();
    for &batch in figure3_batches().iter().take(8) {
        let setup = base.clone().with_batch_bytes(batch);
        for method in [MethodId::B, MethodId::C3] {
            let s = run_method(method, &setup, &index_keys, &search_keys);
            let (mean_us, p99_us) = (s.batch_rtt_mean_ns / 1000.0, s.batch_rtt_p99_ns / 1000.0);
            rows.push(vec![
                method.to_string(),
                fmt_bytes(batch),
                format!("{:.4} s", s.search_time_s),
                format!("{mean_us:.0} µs"),
                if p99_us > 0.0 { format!("{p99_us:.0} µs") } else { "-".to_owned() },
            ]);
            println!(
                "{},{batch},{:.5},{mean_us:.1},{p99_us:.1}",
                method.name().replace(' ', "_"),
                s.search_time_s
            );
        }
    }
    eprint!(
        "{}",
        render_table(&["method", "batch", "total time", "batch RTT mean", "batch RTT p99"], &rows)
    );
    eprintln!(
        "\n(read horizontally: pick a target total time, then compare the RTT \
         column — C-3 reaches any given throughput at a smaller batch, i.e. \
         with faster responses, which is the paper's dual-criteria claim)"
    );
}
