//! **Ablation: multiple master nodes** (the paper's §3.2 remark).
//!
//! "In principle, if there is a heavy load of incoming queries, a single
//! master node could become overloaded. This is easily remedied by setting
//! up multiple master nodes, with replicates of the top level data
//! structure." We make the master the bottleneck (many slaves, so the
//! slave term is small) and sweep the master count.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_masters -- --quick
//! ```

use dini_bench::{render_table, search_key_count};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let base = ExperimentSetup {
        n_slaves: 20, // plenty of slave capacity → master-bound
        batch_bytes: 64 * 1024,
        ..ExperimentSetup::paper()
    };
    let (index_keys, search_keys) = standard_workload(&base, n_search);

    eprintln!("Multi-master ablation — {} slaves, {n_search} keys, 64 KB batches\n", base.n_slaves);
    println!("n_masters,search_time_s,speedup_vs_1,master_idle,slave_idle");
    let mut rows = Vec::new();
    let mut t1 = 0.0f64;
    for n_masters in [1usize, 2, 3, 4] {
        let setup = ExperimentSetup { n_masters, ..base.clone() };
        let s = run_method(MethodId::C3, &setup, &index_keys, &search_keys);
        if n_masters == 1 {
            t1 = s.search_time_s;
        }
        let speedup = t1 / s.search_time_s;
        rows.push(vec![
            format!("{n_masters}"),
            format!("{:.4} s", s.search_time_s),
            format!("{speedup:.2}x"),
            format!("{:.0} %", s.master_idle * 100.0),
            format!("{:.0} %", s.slave_idle * 100.0),
        ]);
        println!(
            "{n_masters},{:.5},{speedup:.3},{:.4},{:.4}",
            s.search_time_s, s.master_idle, s.slave_idle
        );
    }
    eprint!(
        "{}",
        render_table(&["masters", "time", "speedup", "master idle", "slave idle"], &rows)
    );
    eprintln!("\n(adding masters helps until the slaves or the wire become the bound)");
}
