//! **Ablation: bounded master send pool** (reconciling Figure 3's flat
//! large-batch tail).
//!
//! Under strict per-slave batching, a nominal batch larger than a slave's
//! whole workload share degenerates to flush-at-end: the master buffers
//! everything and the run serialises (dispatch, then wire, then lookup).
//! The paper's curve stays flat to 4 MB — but at 2^23 keys each slave
//! only ever receives 3.2 MB, so true 4 MB messages were never possible;
//! any bounded send pool forces smaller messages in that regime. This
//! ablation sweeps Method C-3 with strict batching versus a 1 MB and a
//! 4 MB outgoing pool and shows the pool restores the paper's flatness.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_window -- --quick
//! ```

use dini_bench::{figure3_batches, fmt_bytes, render_table, search_key_count};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let base = ExperimentSetup::paper();
    let (index_keys, search_keys) = standard_workload(&base, n_search);

    let pools: [(&str, Option<usize>); 3] =
        [("strict", None), ("1 MB pool", Some(1 << 20)), ("4 MB pool", Some(4 << 20))];

    eprintln!("Send-pool ablation — Method C-3, {n_search} keys\n");
    println!("batch_bytes,pool,search_time_s,msgs");
    let mut rows = Vec::new();
    for &batch in &figure3_batches() {
        let mut row = vec![fmt_bytes(batch)];
        for (name, pool) in pools {
            let setup =
                ExperimentSetup { batch_bytes: batch, max_outstanding_bytes: pool, ..base.clone() };
            let s = run_method(MethodId::C3, &setup, &index_keys, &search_keys);
            row.push(format!("{:.4}", s.search_time_s));
            println!("{batch},{},{:.5},{}", name.replace(' ', "_"), s.search_time_s, s.msgs);
        }
        rows.push(row);
    }
    eprint!("{}", render_table(&["batch", "strict (s)", "1 MB pool (s)", "4 MB pool (s)"], &rows));
    eprintln!(
        "\n(strict batching blows up once nominal batch ≳ per-slave share; \
         a bounded pool keeps the curve flat — the regime the paper measured)"
    );
}
