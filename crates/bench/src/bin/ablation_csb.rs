//! **Ablation: the CSB+ layout** (Rao & Ross, used by the paper's
//! Method C-1).
//!
//! The CSB+ trick stores one first-child pointer per node instead of a
//! pointer per key, nearly doubling the fan-out at the same node size
//! (7 keys vs 3 keys in a 32-byte line). Fewer levels → fewer cache-line
//! touches per lookup. We measure both layouts on the simulated machine,
//! per lookup, out of cache.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_csb
//! ```

use dini_bench::{opt_usize, render_table};
use dini_cache_sim::{MachineParams, SimMemory};
use dini_index::{CsbTree, PtrNaryTree, RankIndex};
use dini_workload::{gen_search_keys, gen_sorted_unique_keys};

fn main() {
    let n_index = opt_usize("--index-keys", 327_680);
    let n_queries = opt_usize("--queries", 200_000);
    let p = MachineParams::pentium_iii();
    let keys = gen_sorted_unique_keys(n_index, 0xCB);
    let queries = gen_search_keys(n_queries, 0xCC);

    let csb = CsbTree::with_leaf_entries(
        &keys,
        p.keys_per_node(),
        p.leaf_entries_per_line(),
        32,
        1 << 24,
        p.comp_cost_node_ns,
    );
    let ptr = PtrNaryTree::new(&keys, 32, 1 << 28, p.comp_cost_node_ns);

    eprintln!(
        "CSB+ ablation — {n_index} keys: CSB+ {} levels / {:.1} MB, ptr-tree {} levels / {:.1} MB\n",
        csb.n_levels(),
        csb.footprint_bytes() as f64 / (1 << 20) as f64,
        ptr.n_levels(),
        ptr.footprint_bytes() as f64 / (1 << 20) as f64
    );

    println!("layout,levels,footprint_bytes,ns_per_lookup,l2_misses_per_lookup");
    let mut rows = Vec::new();
    for (name, levels, footprint, rank) in [
        (
            "CSB+ (1 child ptr)",
            csb.n_levels(),
            csb.footprint_bytes(),
            Box::new(|k: u32, m: &mut SimMemory| csb.rank(k, m).1)
                as Box<dyn Fn(u32, &mut SimMemory) -> f64>,
        ),
        (
            "ptr n-ary (k ptrs)",
            ptr.n_levels(),
            ptr.footprint_bytes(),
            Box::new(|k: u32, m: &mut SimMemory| ptr.rank(k, m).1),
        ),
    ] {
        let mut mem = SimMemory::new(p.clone());
        // Warm pass, then measure steady state.
        for &q in queries.iter().take(n_queries / 4) {
            rank(q, &mut mem);
        }
        mem.reset_stats();
        let mut ns = 0.0;
        for &q in &queries {
            ns += rank(q, &mut mem);
        }
        let per_key = ns / n_queries as f64;
        let misses = mem.stats().memory_accesses as f64 / n_queries as f64;
        rows.push(vec![
            name.to_owned(),
            format!("{levels}"),
            format!("{:.2} MB", footprint as f64 / (1 << 20) as f64),
            format!("{per_key:.0} ns"),
            format!("{misses:.2}"),
        ]);
        println!("{},{levels},{footprint},{per_key:.1},{misses:.3}", name.replace(',', ";"));
    }
    eprint!(
        "{}",
        render_table(&["layout", "levels", "footprint", "ns/lookup", "L2 miss/lookup"], &rows)
    );
    eprintln!("\n(Rao-Ross: same line size, ~2x fan-out, one level fewer, fewer misses)");
}
