//! Regenerates **Table 3** ("Normalized Predicted and Experimental Running
//! Time for 8 Meg (2^23) keys"): the Appendix-A analytical model's
//! prediction beside our simulator's "experimental" measurement for
//! Methods A, B, and C-3 at the paper's operating point (128 KB batches,
//! 1 master + 10 slaves).
//!
//! Paper's values — predicted: A 0.45 s, B 0.38 s, C-3 0.28 s;
//! experimental: A 0.39 s, B 0.36 s, C-3 0.32 s. The claim reproduced here
//! is the model being within 25 % of the measurement for all three.
//!
//! ```text
//! cargo run -p dini-bench --release --bin table3            # full 2^23
//! cargo run -p dini-bench --release --bin table3 -- --quick # 2^20
//! ```

use dini_bench::{render_table, search_key_count};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};
use dini_model::{MethodCosts, ModelParams};

fn main() {
    let n_search = search_key_count();
    let setup = ExperimentSetup::paper(); // 128 KB batches, 1 + 10 nodes
    let model = ModelParams::paper();
    let predicted = MethodCosts::evaluate(&model);
    let (pa, pb, pc3) = predicted.totals_s(n_search as u64);

    eprintln!("Table 3 — model vs. simulation, {n_search} keys, 128 KB batches");
    eprintln!("(paper ran 2^23 = 8,388,608 keys)\n");

    let (index_keys, search_keys) = standard_workload(&setup, n_search);
    let mut rows = Vec::new();
    let mut csv = vec![
        "method,predicted_s,measured_s,error_pct,paper_predicted_s,paper_measured_s".to_owned(),
    ];
    let paper_vals = [
        (MethodId::A, pa, 0.45, 0.39),
        (MethodId::B, pb, 0.38, 0.36),
        (MethodId::C3, pc3, 0.28, 0.32),
    ];
    for (method, pred, paper_pred, paper_meas) in paper_vals {
        eprintln!("running {method}...");
        let stats = run_method(method, &setup, &index_keys, &search_keys);
        let meas = stats.search_time_s;
        let err = (pred - meas).abs() / meas * 100.0;
        rows.push(vec![
            method.name().to_owned(),
            format!("{pred:.3} s"),
            format!("{meas:.3} s"),
            format!("{err:.0} %"),
            format!("{paper_pred:.2} s"),
            format!("{paper_meas:.2} s"),
        ]);
        csv.push(format!(
            "{},{pred:.4},{meas:.4},{err:.1},{paper_pred},{paper_meas}",
            method.name().replace(' ', "_")
        ));
    }
    eprintln!();
    eprint!(
        "{}",
        render_table(
            &["method", "model", "simulated", "error", "paper model", "paper exp."],
            &rows
        )
    );
    eprintln!("\n(the paper's accuracy claim: model within 25 % of experiment)");
    for line in csv {
        println!("{line}");
    }
}
