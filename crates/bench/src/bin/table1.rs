//! Regenerates **Table 1** ("The Index Structure Setup"): the derived
//! index-structure quantities for the paper's 327 k-key workload, printed
//! beside the values the paper reports.
//!
//! ```text
//! cargo run -p dini-bench --release --bin table1
//! ```

use dini_bench::render_table;
use dini_core::{standard_workload, ExperimentSetup};

fn main() {
    let setup = ExperimentSetup::paper();
    let (index_keys, _) = standard_workload(&setup, 0);
    let t1 = setup.table1(&index_keys);

    let rows = vec![
        row("Number of keys on the sorted array", format!("{}", t1.n_keys), "327,680"),
        row("Search key size", format!("{} bytes", t1.key_bytes), "4 bytes"),
        row(
            "Index tree size",
            format!("{:.1} MB", t1.tree_bytes as f64 / (1024.0 * 1024.0)),
            "3.2 MB",
        ),
        row(
            "Subtree size (except root subtree)",
            format!("{} KB", t1.subtree_bytes / 1024),
            "320 KB",
        ),
        row("Root subtree size", format!("{} bytes", t1.root_subtree_bytes), "44 bytes"),
        row("T (levels, methods A/B)", format!("{}", t1.t_levels), "7"),
        row("L (levels, methods C-1/C-2)", format!("{}", t1.l_levels), "6"),
        row("Node size", format!("{} bytes", t1.node_bytes), "32 bytes"),
        row("Keys per internal node", format!("{}", t1.keys_per_node), "7"),
    ];
    eprintln!("Table 1 — index structure setup (derived vs. paper)\n");
    eprint!("{}", render_table(&["quantity", "derived", "paper"], &rows));

    println!("quantity,derived,paper");
    for r in &rows {
        println!("{},{},{}", r[0].replace(',', ";"), r[1].replace(',', ""), r[2].replace(',', ""));
    }
}

fn row(q: &str, derived: String, paper: &str) -> Vec<String> {
    vec![q.to_owned(), derived, paper.to_owned()]
}
