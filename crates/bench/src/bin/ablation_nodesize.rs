//! **Ablation: tree node size and fractal prefetching** (paper refs \[7\]
//! and \[3\]).
//!
//! The paper fixes node size = one L2 line, citing Hankins & Patel \[7\] on
//! node-size effects and noting Chen et al.'s fractal prefetching
//! B+-trees \[3\] as the wide-node mitigation. We sweep the CSB+ node size
//! from 1 to 8 cache lines on the simulated Pentium III:
//!
//! * wide nodes make trees **shallower** (fewer levels → fewer misses)
//!   but each node touch now misses once **per line** — without
//!   prefetching the trade goes negative fast;
//! * with a stream prefetcher (the fractal-prefetch approximation: the
//!   miss on a node's first line pulls the rest), wide nodes keep the
//!   shallowness without the extra misses.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_nodesize -- --quick
//! ```

use dini_bench::{render_table, search_key_count};
use dini_cache_sim::{MachineParams, Prefetcher, SimMemory};
use dini_core::standard_workload;
use dini_core::ExperimentSetup;
use dini_index::{CsbTree, RankIndex};

fn main() {
    let n_search = (search_key_count() / 8).max(1 << 17);
    let setup = ExperimentSetup::paper();
    let (index_keys, queries) = standard_workload(&setup, n_search);
    let m = &setup.machine;
    let line = m.l2.line_bytes;

    println!("node_lines,levels,tree_mb,plain_misses_per_key,prefetch_misses_per_key,plain_ns,prefetch_ns");
    let mut rows = Vec::new();
    for node_lines in [1u64, 2, 4, 8] {
        let node_bytes = line * node_lines;
        // Keys per node grow with the node; keep one first-child slot.
        let k = (node_bytes as u32 / m.word_bytes) - 1;
        let leaf_entries = (node_bytes as u32 / m.word_bytes / 2).max(1);
        let tree = CsbTree::with_leaf_entries(
            &index_keys,
            k,
            leaf_entries,
            node_bytes,
            1 << 26,
            // Wider nodes cost proportionally more to search.
            m.comp_cost_node_ns * node_lines as f64,
        );

        let measure = |prefetch: bool| {
            let mut mem = SimMemory::new(MachineParams::pentium_iii());
            if prefetch {
                mem = mem.with_prefetcher(Prefetcher::Stream { depth: (node_lines - 1) as u8 });
            }
            for &q in queries.iter().take(n_search / 4) {
                tree.rank(q, &mut mem);
            }
            mem.reset_stats();
            let mut ns = 0.0;
            for &q in &queries {
                ns += tree.rank(q, &mut mem).1;
            }
            (mem.stats().memory_accesses as f64 / queries.len() as f64, ns / queries.len() as f64)
        };
        let (plain_mpk, plain_ns) = measure(false);
        let (pf_mpk, pf_ns) = if node_lines == 1 { (plain_mpk, plain_ns) } else { measure(true) };

        rows.push(vec![
            format!("{node_lines} ({} B)", node_bytes),
            tree.n_levels().to_string(),
            format!("{:.1}", tree.footprint_bytes() as f64 / (1024.0 * 1024.0)),
            format!("{plain_mpk:.2}"),
            format!("{pf_mpk:.2}"),
            format!("{plain_ns:.0} ns"),
            format!("{pf_ns:.0} ns"),
        ]);
        println!(
            "{node_lines},{},{:.2},{plain_mpk:.3},{pf_mpk:.3},{plain_ns:.1},{pf_ns:.1}",
            tree.n_levels(),
            tree.footprint_bytes() as f64 / (1024.0 * 1024.0)
        );
    }
    eprint!(
        "{}",
        render_table(
            &[
                "node (lines)",
                "levels",
                "tree MB",
                "misses/key",
                "w/ prefetch",
                "ns/key",
                "w/ prefetch"
            ],
            &rows
        )
    );
    eprintln!(
        "\n(shallower trees trade fewer levels for more lines per node; the \
         stream prefetcher — standing in for fractal prefetching [3] — \
         recovers the wide-node penalty, matching the Hankins–Patel [7] \
         and Chen et al. [3] findings the paper cites)"
    );
}
