//! Regenerates **Figure 3** ("Comparing Method A, B, and C: 8 million
//! search keys over 11 nodes"): normalized search time versus batch size
//! for all five methods, batch sizes 8 KB through 4 MB.
//!
//! Also reports the §4.1 side observations: mean slave idle fraction per
//! batch size (the paper saw ~50 % at 8 KB falling to ~20 % at 4 MB) and
//! the message counts.
//!
//! ```text
//! cargo run -p dini-bench --release --bin fig3              # full 2^23
//! cargo run -p dini-bench --release --bin fig3 -- --quick   # 2^20 keys
//! cargo run -p dini-bench --release --bin fig3 -- --methods C3,A
//! ```

use dini_bench::{figure3_batches, fmt_bytes, opt_value, render_table, search_key_count};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId, RunStats};

fn methods_from_args() -> Vec<MethodId> {
    match opt_value("--methods") {
        None => MethodId::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|m| match m.trim().to_ascii_uppercase().as_str() {
                "A" => MethodId::A,
                "B" => MethodId::B,
                "C1" | "C-1" => MethodId::C1,
                "C2" | "C-2" => MethodId::C2,
                "C3" | "C-3" => MethodId::C3,
                other => panic!("unknown method {other}; use A,B,C1,C2,C3"),
            })
            .collect(),
    }
}

fn main() {
    let n_search = search_key_count();
    let methods = methods_from_args();
    let base = ExperimentSetup::paper();
    let (index_keys, search_keys) = standard_workload(&base, n_search);
    let batches = figure3_batches();

    eprintln!(
        "Figure 3 — search time vs batch size; {n_search} keys, {} nodes, {}",
        base.n_nodes(),
        base.network.name
    );

    println!("{}", RunStats::csv_header());
    let mut grid: Vec<Vec<String>> = Vec::new();
    let mut idle_rows: Vec<Vec<String>> = Vec::new();
    for &batch in &batches {
        let setup = base.clone().with_batch_bytes(batch);
        let mut row = vec![fmt_bytes(batch)];
        let mut idle_row = vec![fmt_bytes(batch)];
        for &m in &methods {
            let stats = run_method(m, &setup, &index_keys, &search_keys);
            eprintln!(
                "  {} @ {:>6}: {:.4} s (slave idle {:.0} %, {} msgs)",
                m,
                fmt_bytes(batch),
                stats.search_time_s,
                stats.slave_idle * 100.0,
                stats.msgs
            );
            row.push(format!("{:.4}", stats.search_time_s));
            if m.is_distributed() {
                idle_row.push(format!("{:.0} %", stats.slave_idle * 100.0));
            }
            println!("{}", stats.csv_row());
        }
        grid.push(row);
        idle_rows.push(idle_row);
    }

    let mut headers: Vec<&str> = vec!["batch"];
    let names: Vec<String> = methods.iter().map(|m| m.name().to_owned()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    eprintln!("\nSearch time (s), normalized as in the paper:\n");
    eprint!("{}", render_table(&headers, &grid));

    let dist_names: Vec<String> =
        methods.iter().filter(|m| m.is_distributed()).map(|m| m.name().to_owned()).collect();
    if !dist_names.is_empty() {
        let mut idle_headers: Vec<&str> = vec!["batch"];
        idle_headers.extend(dist_names.iter().map(|s| s.as_str()));
        eprintln!("\nMean slave idle fraction (paper §4.1: ~50 % @ 8 KB, ~20 % @ 4 MB):\n");
        eprint!("{}", render_table(&idle_headers, &idle_rows));
    }
}
