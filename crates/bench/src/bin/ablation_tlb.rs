//! **Ablation: TLB misses** (paper §A.2).
//!
//! The paper's model ignores TLB misses and says so: "Method A and
//! method B are significantly affected by TLB misses... In contrast,
//! method C generates few TLB misses... Hence, the following analysis
//! results yield a lower bound running time for Methods A and B." This
//! ablation turns the TLB model on and quantifies exactly that asymmetry.
//!
//! ```text
//! cargo run -p dini-bench --release --bin ablation_tlb -- --quick
//! ```

use dini_bench::{render_table, search_key_count};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn main() {
    let n_search = search_key_count();
    let base = ExperimentSetup::paper();
    let (index_keys, search_keys) = standard_workload(&base, n_search);

    eprintln!("TLB ablation — {n_search} keys, 128 KB batches\n");
    println!("method,no_tlb_s,with_tlb_s,slowdown_pct,tlb_misses_per_key");
    let mut rows = Vec::new();
    for method in [MethodId::A, MethodId::B, MethodId::C3] {
        let off = run_method(method, &base, &index_keys, &search_keys);
        let on = run_method(
            method,
            &ExperimentSetup { model_tlb: true, ..base.clone() },
            &index_keys,
            &search_keys,
        );
        let slowdown = (on.search_time_s / off.search_time_s - 1.0) * 100.0;
        let tlb_per_key = on.mem.tlb_misses as f64 / n_search as f64;
        rows.push(vec![
            method.name().to_owned(),
            format!("{:.4} s", off.search_time_s),
            format!("{:.4} s", on.search_time_s),
            format!("{slowdown:+.1} %"),
            format!("{tlb_per_key:.3}"),
        ]);
        println!(
            "{},{:.5},{:.5},{slowdown:.2},{tlb_per_key:.4}",
            method.name().replace(' ', "_"),
            off.search_time_s,
            on.search_time_s
        );
    }
    eprint!(
        "{}",
        render_table(&["method", "TLB off", "TLB on", "slowdown", "TLB miss/key"], &rows)
    );
    eprintln!("\n(paper: A and B are TLB-hurt, C barely — its dataset is small and contiguous)");
}
