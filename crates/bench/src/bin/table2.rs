//! Regenerates **Table 2** ("Parameters On the Linux Cluster"): the paper's
//! measured machine parameters, which our simulator uses verbatim. With
//! `--measure`, also probes the *host* machine the way the paper probed its
//! Pentium III (sequential vs. random bandwidth, pointer-chase latency,
//! per-node comparison cost), demonstrating that the random-access penalty
//! the paper exploits still exists today.
//!
//! ```text
//! cargo run -p dini-bench --release --bin table2 -- --measure
//! ```

use dini_bench::{has_flag, render_table};
use dini_cache_sim::MachineParams;
use dini_cluster::NetworkModel;

fn main() {
    let p = MachineParams::pentium_iii();
    let net = NetworkModel::myrinet();

    let rows = vec![
        vec!["L2 Cache Size".into(), format!("{} KB", p.l2.size_bytes / 1024), "512 KB".into()],
        vec!["L1 Cache Size".into(), format!("{} KB", p.l1.size_bytes / 1024), "16 KB".into()],
        vec!["L2 Cache line Size".into(), format!("{} bytes", p.l2.line_bytes), "32 bytes".into()],
        vec!["L1 Cache line Size".into(), format!("{} bytes", p.l1.line_bytes), "32 bytes".into()],
        vec!["B2 Miss Penalty".into(), format!("{} ns", p.b2_miss_penalty_ns), "110 ns".into()],
        vec!["B1 Miss Penalty".into(), format!("{} ns", p.b1_miss_penalty_ns), "16.25 ns".into()],
        vec!["TLB Entries".into(), format!("{}", p.tlb_entries), "64".into()],
        vec!["Comp Cost Node".into(), format!("{} ns", p.comp_cost_node_ns), "30 ns".into()],
        vec![
            "W1 (Memory Bandwidth)".into(),
            format!("{:.0} MB/s", p.mem_bw_seq * 1000.0),
            "647 MB/s".into(),
        ],
        vec![
            "W2 (Network Bandwidth)".into(),
            format!("{:.0} MB/s", net.bandwidth * 1000.0),
            "138 MB/s".into(),
        ],
        vec![
            "Random memory bandwidth".into(),
            format!("{:.0} MB/s", p.mem_bw_rand * 1000.0),
            "48 MB/s".into(),
        ],
    ];
    eprintln!("Table 2 — machine parameters (simulator vs. paper)\n");
    eprint!("{}", render_table(&["parameter", "simulator", "paper"], &rows));
    println!("parameter,simulator,paper");
    for r in &rows {
        println!("{},{},{}", r[0], r[1].replace(',', ""), r[2].replace(',', ""));
    }

    if has_flag("--measure") {
        eprintln!("\nProbing this host (the paper's methodology, §2.1)...");
        let h = dini_sysprobe::measure_all(256 << 20);
        let rows = vec![
            vec![
                "Sequential bandwidth".into(),
                format!("{:.0} MB/s", h.seq_bw_mb_s),
                "647 MB/s".into(),
            ],
            vec![
                "Random (dependent) bandwidth".into(),
                format!("{:.0} MB/s", h.rand_bw_mb_s),
                "48 MB/s".into(),
            ],
            vec![
                "Seq : random ratio".into(),
                format!("{:.1}x", h.seq_rand_ratio()),
                "13.5x".into(),
            ],
            vec![
                "Out-of-cache load latency".into(),
                format!("{:.1} ns", h.miss_penalty_ns),
                "110 ns (B2)".into(),
            ],
            vec!["In-cache load latency".into(), format!("{:.1} ns", h.hit_latency_ns), "-".into()],
            vec!["Comp Cost Node".into(), format!("{:.1} ns", h.comp_cost_node_ns), "30 ns".into()],
        ];
        eprintln!();
        eprint!("{}", render_table(&["host measurement", "this machine", "paper (PIII)"], &rows));
        println!("host_measurement,this_machine,paper");
        for r in &rows {
            println!("{},{},{}", r[0], r[1], r[2].replace(',', ""));
        }
    }

    if has_flag("--curve") {
        eprintln!("\nLatency staircase (dependent chase vs. working set)...");
        let curve = dini_sysprobe::measure_latency_curve(4 << 10, 128 << 20, 400_000);
        let knees = dini_sysprobe::detect_knees(&curve, 1.8);
        println!("working_set_bytes,ns_per_load");
        let mut rows = Vec::new();
        for pt in &curve {
            rows.push(vec![
                dini_bench::fmt_bytes(pt.bytes as usize),
                format!("{:.2} ns", pt.ns_per_load),
            ]);
            println!("{},{:.3}", pt.bytes, pt.ns_per_load);
        }
        eprint!("{}", render_table(&["working set", "latency"], &rows));
        eprintln!(
            "detected capacity knees (≈ cache sizes): {}",
            knees.iter().map(|&b| dini_bench::fmt_bytes(b as usize)).collect::<Vec<_>>().join(", ")
        );
        eprintln!("(the paper's machine would show knees at 16 KB and 512 KB)");
    }
}
