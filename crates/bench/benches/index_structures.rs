//! Criterion microbenchmarks of the index substrates running *natively*
//! (NullMemory, real wall-clock): sorted-array binary search, CSB+ tree
//! descent, pointer n-ary tree (the CSB+ ablation baseline), and the
//! Zhou–Ross buffered batch lookup.
//!
//! These measure the structures themselves on the host CPU — the modern
//! counterpart of the paper's per-structure cost measurements — while the
//! figure/table binaries measure simulated Pentium III time.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use dini_cache_sim::{AddressSpace, NullMemory};
use dini_index::{
    BufferedLookup, CsbTree, DeltaArray, HashIndex, PtrNaryTree, RankIndex, SortedArray,
};
use dini_workload::{gen_search_keys, gen_sorted_unique_keys};
use std::hint::black_box;

const N_KEYS: usize = 327_680; // the paper's index size
const N_QUERIES: usize = 8_192;

fn inputs() -> (Vec<u32>, Vec<u32>) {
    (gen_sorted_unique_keys(N_KEYS, 0xDEC0DE), gen_search_keys(N_QUERIES, 0xFACADE))
}

fn bench_single_lookup(c: &mut Criterion) {
    let (keys, queries) = inputs();
    let arr = SortedArray::new(keys.clone(), 4096, 0.0);
    let csb = CsbTree::with_leaf_entries(&keys, 7, 4, 32, 1 << 20, 0.0);
    let ptr = PtrNaryTree::new(&keys, 32, 1 << 24, 0.0);

    let mut g = c.benchmark_group("single_lookup");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("sorted_array", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &queries {
                acc = acc.wrapping_add(arr.rank(black_box(q), &mut NullMemory).0 as u64);
            }
            acc
        })
    });
    g.bench_function("csb_tree", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &queries {
                acc = acc.wrapping_add(csb.rank(black_box(q), &mut NullMemory).0 as u64);
            }
            acc
        })
    });
    g.bench_function("ptr_nary_tree", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &queries {
                acc = acc.wrapping_add(ptr.rank(black_box(q), &mut NullMemory).0 as u64);
            }
            acc
        })
    });
    g.bench_function("std_partition_point", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &queries {
                acc = acc.wrapping_add(keys.partition_point(|&k| k <= black_box(q)) as u64);
            }
            acc
        })
    });
    g.finish();
}

fn bench_extended_structures(c: &mut Criterion) {
    let (keys, queries) = inputs();
    // Present-key workload: hash indices can only answer these.
    let present: Vec<u32> =
        (0..N_QUERIES).map(|i| keys[i.wrapping_mul(2_654_435_761) % keys.len()]).collect();
    let hash = HashIndex::new(&keys, 1 << 30, 0.0);
    let arr = SortedArray::new(keys.clone(), 4096, 0.0);
    let delta = {
        let mut d = DeltaArray::new(keys.clone(), 1 << 20, 0.0, 4096);
        // A realistic half-full delta so the three-way rank is exercised.
        for i in 0..2048u32 {
            d.insert(i.wrapping_mul(2_654_435_761) | 1, &mut NullMemory);
        }
        d
    };

    let mut g = c.benchmark_group("extended_structures");
    g.throughput(Throughput::Elements(present.len() as u64));
    g.bench_function("hash_exact_match", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &present {
                acc =
                    acc.wrapping_add(hash.get(black_box(q), &mut NullMemory).0.unwrap_or(0) as u64);
            }
            acc
        })
    });
    g.bench_function("sorted_array_present_keys", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &present {
                acc = acc.wrapping_add(arr.rank(black_box(q), &mut NullMemory).0 as u64);
            }
            acc
        })
    });
    g.bench_function("delta_array_rank", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &queries {
                acc = acc.wrapping_add(delta.rank(black_box(q), &mut NullMemory).0 as u64);
            }
            acc
        })
    });
    g.finish();
}

fn bench_batched_lookup(c: &mut Criterion) {
    let (keys, queries) = inputs();
    let csb = CsbTree::with_leaf_entries(&keys, 7, 4, 32, 1 << 20, 0.0);

    let mut g = c.benchmark_group("batched_lookup");
    g.throughput(Throughput::Elements(queries.len() as u64));
    for cache_kb in [16u64, 512] {
        g.bench_with_input(
            BenchmarkId::new("buffered", format!("{cache_kb}KB_target")),
            &cache_kb,
            |b, &kb| {
                let mut space = AddressSpace::new();
                let mut bl =
                    BufferedLookup::for_cache(&csb, kb * 1024, 0.5, &mut space, queries.len());
                let mut out = Vec::new();
                b.iter(|| {
                    bl.rank_batch(&csb, black_box(&queries), &mut out, &mut NullMemory);
                    out.last().copied()
                })
            },
        );
    }
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    let (keys, _) = inputs();
    let mut g = c.benchmark_group("build");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("csb_tree", |b| {
        b.iter_batched(
            || keys.clone(),
            |k| CsbTree::with_leaf_entries(&k, 7, 4, 32, 0, 0.0),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("sorted_array", |b| {
        b.iter_batched(|| keys.clone(), |k| SortedArray::new(k, 0, 0.0), BatchSize::LargeInput)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_single_lookup,
    bench_batched_lookup,
    bench_build,
    bench_extended_structures
);
criterion_main!(benches);
