//! Criterion benchmark of the native thread-backed [`DistributedIndex`]
//! (Method C-3 on real cores) against a single-threaded binary search —
//! the modern-hardware sanity check that partitioned, cache-resident
//! lookups scale with worker count for large batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dini_core::{DistributedIndex, NativeConfig};
use dini_workload::{gen_search_keys, gen_sorted_unique_keys};
use std::hint::black_box;

fn bench_native(c: &mut Criterion) {
    let keys = gen_sorted_unique_keys(1 << 20, 7);
    let queries = gen_search_keys(1 << 14, 8);

    let mut g = c.benchmark_group("native_lookup_batch");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.sample_size(20);

    g.bench_function("single_thread_baseline", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &q in &queries {
                acc = acc.wrapping_add(keys.partition_point(|&k| k <= black_box(q)) as u64);
            }
            acc
        })
    });

    for n_slaves in [1usize, 2, 4, 8] {
        let mut cfg = NativeConfig::new(n_slaves);
        cfg.pin_cores = false; // CI machines may deny affinity
        let mut idx = DistributedIndex::build(&keys, cfg);
        g.bench_with_input(BenchmarkId::new("distributed", n_slaves), &n_slaves, |b, _| {
            b.iter(|| idx.lookup_batch(black_box(&queries)).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_native);
criterion_main!(benches);
