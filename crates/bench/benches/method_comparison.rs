//! Criterion benchmark over the *simulated* method comparison — one
//! Figure 3 point per method at the paper's 128 KB operating point, scaled
//! down so a bench iteration stays subsecond. The measured quantity is the
//! wall-clock cost of the simulation itself; the simulated seconds are
//! reported by the `fig3`/`table3` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dini_core::{run_method, standard_workload, ExperimentSetup, MethodId};

fn bench_methods(c: &mut Criterion) {
    let setup = ExperimentSetup {
        n_index_keys: 327_680,
        batch_bytes: 128 * 1024,
        ..ExperimentSetup::paper()
    };
    let (index_keys, search_keys) = standard_workload(&setup, 1 << 17);

    let mut g = c.benchmark_group("simulate_method");
    g.sample_size(10);
    for m in MethodId::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, &m| {
            b.iter(|| run_method(m, &setup, &index_keys, &search_keys).search_time_s)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
