//! `RemoteClient`: the caller-side half of the transport — shard-map
//! routing, client-side batch coalescing, retry, and endpoint failover.
//!
//! A `RemoteClient` gives remote callers the exact API (and error
//! semantics) [`ServerHandle`](dini_serve::ServerHandle) gives local
//! ones:
//!
//! * **Routing** — keys route to spans through the same delimiter
//!   binary search (`dini-serve`'s [`ShardRouter`], one level up), and
//!   to one of the span's replica endpoints by power-of-two choices
//!   over live per-endpoint queue depth
//!   ([`ReplicaSelector`]) — the identical
//!   machinery `router.rs` runs over replica dispatchers.
//! * **Coalescing** — submissions land in a per-endpoint
//!   [`AdmissionQueue`] and a worker thread coalesces them with the
//!   *same* [`collect_batch_into`] the server's dispatchers use, so one
//!   `Lookup` frame amortises the per-frame overhead across a batch:
//!   the paper's Figure 3 economics, applied to the wire.
//! * **Replies** — pooled generation-tagged reply slots (the server's
//!   own [`SlotPool`]) match replies to waiters; a duplicated reply
//!   frame finds its request already resolved and is dropped, so
//!   retry + duplication can never double-answer a lookup.
//! * **Retry** — a batch unanswered after `retry_timeout` is resent
//!   under the same request id (lookups are idempotent reads); after
//!   `max_retries` the endpoint is declared dead.
//! * **Failover** — a dead endpoint (connection loss, server shutdown
//!   notice, retry exhaustion) marks itself dead *before* re-homing its
//!   in-flight and queued lookups onto surviving replica endpoints of
//!   the same span — the protocol `dini-serve`'s crashed replicas run,
//!   lifted to connections. Only when a span's last endpoint is gone do
//!   callers see [`ShuttingDown`](ServeError::ShuttingDown).
//! * **Rank composition** — a span's server answers ranks within its
//!   own slice; the client adds the live-key counts of lower spans
//!   (refreshed by epoch pings and quiesce acks), composing global
//!   ranks exactly like the paper's master composes slave ranks.
//! * **Replicated churn** — updates append to a per-span single-writer
//!   log (epoch-stamped, sequence-numbered, coalesced like lookups) and
//!   only report `Ok` once a quorum of the span's live endpoints has
//!   acked applying them in order; endpoint death elects the
//!   longest-log survivor and replays laggards' missing suffixes (the
//!   appender thread's docs spell out the protocol).

use crate::topology::Topology;
use crate::transport::{Dialer, Duplex, FrameRx, FrameTx, NetError};
use crate::wire::{Frame, LookupStatus, StatsMsg, StatusCode, WireOp, WIRE_VERSION};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use dini_cluster::LogHistogram;
use dini_flight::{EventKind, FlightJournal};
use dini_obs::{AtomicLogHistogram, StageRecord, TraceConfig, TraceRing};
use dini_serve::admission::AdmissionQueue;
use dini_serve::batcher::{collect_batch_into, Request};
use dini_serve::clock::dur_ns;
use dini_serve::oneshot::{reply_pair, ReplyHandle, ReplySlot, SlotPool};
use dini_serve::{Clock, ClockJoinHandle, Nanos, ReplicaSelector, ServeError, ShardRouter};
use dini_workload::Op;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often an endpoint worker wakes to flush control frames, check
/// retries, and notice shutdown.
const WORKER_POLL: Duration = Duration::from_millis(1);
/// How often an endpoint reader wakes to notice shutdown/death.
const READER_POLL: Duration = Duration::from_millis(10);
/// How often a span's log appender wakes to fold in acks, scan
/// liveness, and check repair deadlines.
const APPENDER_POLL: Duration = Duration::from_millis(1);

/// Client-side knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Max keys coalesced into one `Lookup` frame.
    pub max_batch: usize,
    /// Max time the first key of a frame waits for co-travellers.
    pub max_delay: Duration,
    /// Per-endpoint submit queue bound; `try_lookup` sheds client-side
    /// when the chosen endpoint's queue is full.
    pub queue_capacity: usize,
    /// Resend an unanswered lookup batch after this long.
    pub retry_timeout: Duration,
    /// Consecutive unanswered (re)sends before an endpoint is declared
    /// dead and failed over.
    pub max_retries: u32,
    /// Round-trip budget for control frames (quiesce, epoch ping) per
    /// attempt.
    pub ctrl_timeout: Duration,
    /// Budget for the connect-time `Hello`/`ShardMap` handshake.
    pub handshake_timeout: Duration,
    /// How many quorum-acked churn-log records each span's appender
    /// retains *below* its trim watermark. A span process that restarts
    /// from a `dini-store` snapshot rejoins ([`NetHandle::rejoin`]) at
    /// its snapshot's `(epoch, seq)` watermark and is caught up by
    /// replaying this tail; a watermark older than the retained window
    /// cannot be repaired and the endpoint stays dead. Memory cost is
    /// `~5 bytes × log_retention` per span.
    pub log_retention: u64,
    /// The clock all client threads wait on (a
    /// [`SimClock`](dini_serve::SimClock) runs the whole client on
    /// virtual time).
    pub clock: Clock,
    /// Client-side wire tracing: seeded sampling of per-frame
    /// encoded→acked round trips into per-endpoint rings (the `net:`
    /// stages of the end-to-end trace). On by default;
    /// [`TraceConfig::disabled`] turns it off. A sampled batch is also
    /// stamped with a nonzero `trace` id on the wire, so the server's
    /// stage records for that batch join the client's wire record into
    /// one causal timeline ([`dini_obs::causal`]).
    pub trace: TraceConfig,
    /// Crash-safe flight recorder for client lifecycle events
    /// (elections, endpoint death/rejoin, update resends, shed
    /// bursts). `None` (the default) records nothing; with a journal,
    /// every event survives `kill -9` and
    /// [`dini_flight::read_journal`] replays the crash story.
    pub flight: Option<Arc<FlightJournal>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            max_batch: 256,
            max_delay: Duration::from_micros(50),
            queue_capacity: 1024,
            retry_timeout: Duration::from_secs(1),
            max_retries: 8,
            ctrl_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(5),
            log_retention: 16_384,
            clock: Clock::system(),
            trace: TraceConfig::default(),
            flight: None,
        }
    }
}

/// Receipt for a control-frame round trip. Live-key payloads are folded
/// into `span_live` by the reader before the waiter is released; a
/// stats poll carries the span's [`StatsMsg`] through to the waiter.
#[derive(Debug, Clone)]
enum CtrlReply {
    /// A bare acknowledgement (update ack, quiesce ack, epoch pong).
    Ack,
    /// A [`Frame::StatsReply`] payload.
    Stats(Box<StatsMsg>),
}

/// One message to a span's churn-log appender thread.
enum UpdMsg {
    /// Append one log record; `reply` resolves once quorum-acked.
    Op { op: WireOp, reply: ReplyHandle },
    /// Resolve once every *live* endpoint has acked everything appended
    /// before this flush (the pre-barrier half of `quiesce`).
    Flush(Sender<Result<(), ServeError>>),
}

/// An endpoint event routed to its span's appender thread.
enum EpEvent {
    /// An `UpdateAck` from an endpoint reader: `pos` (position within
    /// the span's endpoint list) has applied the log through `seq`. The
    /// ack's epoch is dropped at the reader — sequences are global (one
    /// sequencer, records immutable per seq), so a seq means the same
    /// thing in every epoch.
    Ack { pos: usize, seq: u64 },
    /// `pos`'s server restarted from a snapshot and its connection was
    /// re-established: its log cursor is exactly `seq` (the snapshot
    /// watermark — everything at or below is folded in, everything
    /// above must be replayed). Sent by the endpoint worker *before*
    /// the queue flips alive, and honored by the appender's liveness
    /// scan only after it is processed, so a stale-high ack from the
    /// endpoint's previous life can never count toward quorum.
    Revive { pos: usize, seq: u64 },
}

/// One lookup batch on the wire, awaiting its reply.
struct BatchInFlight {
    keys: Vec<u32>,
    handles: Vec<ReplyHandle>,
    sent_at: Nanos,
    attempts: u32,
    /// The causal trace id stamped on the frame (0 = unsampled).
    /// Resends reuse it — the timeline follows the request, not the
    /// attempt.
    trace: u64,
}

type InFlight = Arc<Mutex<BTreeMap<u64, BatchInFlight>>>;

/// Connect-time plumbing for one endpoint worker: the submit/control
/// receive halves, the dialed connection (`None` when the endpoint was
/// unreachable — the worker starts in its dead-wait loop), and the
/// revive route [`NetHandle::rejoin`] hands fresh connections through.
type EndpointPipes = (Receiver<Request>, Receiver<Frame>, Option<Duplex>, Receiver<Duplex>);

/// Client-side accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetClientStats {
    /// Lookup batches resent after a reply timeout.
    pub retries: u64,
    /// Lookups re-homed from a dead endpoint to a surviving replica.
    pub rerouted: u64,
    /// Lookups shed client-side (full endpoint queue on `try_lookup`).
    pub client_shed: u64,
    /// Lookups admitted into some endpoint queue.
    pub admitted: u64,
    /// Churn-log suffixes resent to a lagging replica (repair traffic).
    pub update_resends: u64,
    /// Epoch bumps after an append-target endpoint died (each one
    /// re-elected the longest-log survivor and replayed the laggards'
    /// missing suffix).
    pub elections: u64,
}

struct ClientCore {
    cfg: ClientConfig,
    clock: Clock,
    span_router: ShardRouter,
    selectors: Vec<ReplicaSelector>,
    /// Flat, span-major: `queues[span_eps[span][i]]`.
    queues: Vec<AdmissionQueue>,
    ctrl_txs: Vec<Sender<Frame>>,
    span_eps: Vec<Vec<usize>>,
    ep_span: Vec<usize>,
    /// Position of each flat endpoint within its span's endpoint list
    /// (the per-span coordinate the appender's ack bookkeeping runs on).
    ep_pos: Vec<usize>,
    pools: Vec<SlotPool>,
    /// Per-span append queues into the churn-log appender threads.
    upd_txs: Vec<Sender<UpdMsg>>,
    /// Per-span reply-slot pools for pending updates.
    upd_pools: Vec<SlotPool>,
    /// Per-span event routes: endpoint readers push `UpdateAck`
    /// positions (and workers push revive cursors) here; the span's
    /// appender folds them into its quorum watermark.
    upd_ack_txs: Vec<Sender<EpEvent>>,
    /// The dialer endpoints were connected through, kept for
    /// [`NetHandle::rejoin`]'s re-dial.
    dialer: Box<dyn Dialer>,
    /// Flat endpoint addresses, same order as `queues` —
    /// [`NetHandle::rejoin`] resolves an address to its endpoint slot.
    ep_addrs: Vec<String>,
    /// Per-endpoint revive routes into the worker's dead-wait loop.
    revive_txs: Vec<Sender<Duplex>>,
    /// Live key count per span, refreshed by pings and quiesce acks —
    /// the cross-process half of rank composition.
    span_live: Vec<AtomicU64>,
    ctrl: Mutex<BTreeMap<u64, Sender<CtrlReply>>>,
    next_req: AtomicU64,
    shutdown: AtomicBool,
    // ordering: relaxed-ok: retries/rerouted are monotonic counters
    // folded into stats snapshots; readers tolerate staleness. The
    // shutdown flag above stays SeqCst everywhere — cold teardown path.
    retries: AtomicU64,
    rerouted: AtomicU64,
    update_resends: AtomicU64,
    elections: AtomicU64,
    /// Per-frame wire round-trip time (send → reply), nanoseconds.
    wire_rtt: AtomicLogHistogram,
    /// Per-endpoint wire-stage trace rings; each endpoint's reader
    /// thread is its ring's single writer.
    wire_traces: Vec<TraceRing>,
}

impl ClientCore {
    /// Record one lifecycle event in the flight journal, if configured.
    fn flight(&self, kind: EventKind, a: u16, b: u32, c: u64) {
        if let Some(j) = &self.cfg.flight {
            j.record(kind, a, b, c, 0, self.clock.now());
        }
    }

    fn fresh_req(&self) -> u64 {
        // ordering: relaxed-ok: unique request-id counter; atomicity only.
        self.next_req.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Sum of live keys in spans below `span` — the base rank added to
    /// every rank that span's servers return.
    fn span_base(&self, span: usize) -> u32 {
        // ordering: relaxed-ok: the quiesce/ping ctrl reply that refreshed
        // these counts already synchronized with this thread through its
        // reply channel; the load itself needs only atomicity.
        self.span_live[..span].iter().map(|a| a.load(Ordering::Relaxed) as u32).sum()
    }

    fn ctrl_fill(&self, req: u64, reply: CtrlReply) {
        if req == 0 {
            return;
        }
        let waiter = self.ctrl.lock().expect("ctrl lock").remove(&req);
        if let Some(tx) = waiter {
            let _ = tx.send(reply);
        }
    }

    /// Send `make(req)` to endpoint `ep` and wait for its ack, retrying
    /// on per-attempt timeout. Control frames ride the lookup socket
    /// (via the worker's control channel), so they order FIFO with the
    /// updates that preceded them.
    fn ctrl_roundtrip(
        &self,
        ep: usize,
        make: impl Fn(u64) -> Frame,
    ) -> Result<CtrlReply, ServeError> {
        let req = self.fresh_req();
        let (tx, rx) = bounded(1);
        self.ctrl.lock().expect("ctrl lock").insert(req, tx);
        let frame = make(req);
        for _ in 0..=self.cfg.max_retries {
            if !self.queues[ep].is_alive() || self.ctrl_txs[ep].send(frame.clone()).is_err() {
                break;
            }
            match self.clock.recv_timeout(&rx, self.cfg.ctrl_timeout) {
                Ok(rep) => return Ok(rep),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.ctrl.lock().expect("ctrl lock").remove(&req);
        Err(ServeError::ShuttingDown)
    }

    /// Re-home one lookup from dead endpoint `me` to a surviving
    /// replica endpoint of `span` — the same two-pass protocol
    /// `dini-serve`'s crashed replicas run: every survivor non-blocking
    /// in deterministic rotation order, then blocking on the
    /// least-loaded. `false` (after dropping the request, which fills
    /// its waiter with `ShuttingDown`) only when no survivor remains.
    fn reroute(&self, span: usize, me: usize, mut req: Request) -> bool {
        let eps = &self.span_eps[span];
        let n = eps.len();
        // `me` is always one of `span`'s endpoints — the span lists are
        // fixed at connect time and `ep_span` is their inverse. Fallback
        // 0 (debug-checked) keeps release builds rotating from a valid
        // position rather than indexing out of bounds; it skews the
        // rotation start and exempts endpoint 0 from the blocking pass,
        // but every survivor is still tried.
        let me_pos = match eps.iter().position(|&e| e == me) {
            Some(p) => p,
            None => {
                debug_assert!(false, "endpoint {me} not in span {span}'s endpoint list");
                0
            }
        };
        for off in 1..n {
            let q = &self.queues[eps[(me_pos + off) % n]];
            if !q.is_alive() {
                continue;
            }
            match q.resubmit(req, false) {
                Ok(()) => return true,
                Err(bounced) => req = bounced,
            }
        }
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (pos, &e) in eps.iter().enumerate() {
                if pos == me_pos || !self.queues[e].is_alive() {
                    continue;
                }
                let d = self.queues[e].depth();
                if best.is_none_or(|(bd, bp)| d < bd || (d == bd && pos < bp)) {
                    best = Some((d, pos));
                }
            }
            let Some((_, pos)) = best else {
                drop(req); // drop-fill: the waiter resolves ShuttingDown
                return false;
            };
            match self.queues[eps[pos]].resubmit(req, true) {
                Ok(()) => return true,
                Err(bounced) => req = bounced,
            }
        }
    }

    /// Drain `ep`'s in-flight wire batches and re-home every lookup.
    fn drain_in_flight(&self, ep: usize, in_flight: &InFlight) {
        let span = self.ep_span[ep];
        let drained = std::mem::take(&mut *in_flight.lock().expect("in-flight lock"));
        let now = self.clock.now();
        for (_, b) in drained {
            for (key, handle) in b.keys.into_iter().zip(b.handles) {
                self.queues[ep].complete(1);
                if self.reroute(span, ep, Request { key, enqueued: now, trace: 0, reply: handle }) {
                    self.rerouted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

// ------------------------------------------------------------- threads

/// Why one connection's serve loop ended.
#[derive(PartialEq)]
enum ConnExit {
    /// The client is shutting down (or its core is gone): the worker
    /// itself should exit.
    Teardown,
    /// The endpoint died (send failure, retry exhaustion, or the reader
    /// saw it die): fail over, then wait for a revive.
    Dead,
}

/// The per-endpoint lifecycle thread. Owns the endpoint across
/// connection *generations*: serve the current connection (coalesce →
/// frame → send, retries, outbound control frames — the transmit half),
/// spawning one reader per generation for the receive half; on endpoint
/// death, mark dead, re-home the backlog, **join the dead generation's
/// reader**, and sit in a dead-wait loop that keeps draining (and
/// re-homing) racing submits until [`NetHandle::rejoin`] hands in a
/// fresh connection — whose handshake rewinds the span appender's
/// cursor to the server's recovered snapshot watermark before the
/// endpoint flips alive again.
///
/// The reader join *before* accepting a revive is load-bearing: a
/// previous generation's reader left polling a closed connection would
/// observe its `Err`, and mark the *revived* queue dead.
fn run_worker(
    core: Arc<ClientCore>,
    ep: usize,
    req_rx: Receiver<Request>,
    ctrl_rx: Receiver<Frame>,
    mut conn: Option<Duplex>,
    revive_rx: Receiver<Duplex>,
) {
    let clock = core.clock.clone();
    let mut batch: Vec<Request> = Vec::new();
    let mut generation = 0u64;
    loop {
        if let Some(duplex) = conn.take() {
            generation += 1;
            let Duplex { tx: mut ftx, rx: frx, peer: _ } = duplex;
            let in_flight: InFlight = Arc::new(Mutex::new(BTreeMap::new()));
            let reader = {
                let c = core.clone();
                let inf = in_flight.clone();
                clock.spawn(&format!("dini-net-cr-{ep}-g{generation}"), move || {
                    run_reader(c, ep, frx, inf)
                })
            };
            // Flip alive only now: the reader that will drain replies
            // and the worker that will drain submits are both wired up.
            // (No-op on generation 1 — the queue starts alive.)
            core.queues[ep].revive();
            let exit = serve_conn(&core, ep, &req_rx, &ctrl_rx, &mut ftx, &in_flight, &mut batch);
            // Mark dead before re-homing (even on teardown — it lets the
            // reader exit on its poll) so nothing re-routes back here.
            core.queues[ep].mark_dead();
            if exit == ConnExit::Dead {
                // One record per death, whoever noticed first (reader,
                // appender stall, or this worker's send failure) — every
                // dead generation exits through exactly this point.
                core.flight(EventKind::EndpointDead, core.ep_span[ep] as u16, ep as u32, 0);
            }
            if exit == ConnExit::Teardown {
                // Dropping the backlog drop-fills its waiters
                // `ShuttingDown`; re-homing at teardown would bounce
                // lookups between endpoints that are all dying.
                batch.clear();
                let _ = reader.join();
                return;
            }
            for req in batch.drain(..) {
                core.queues[ep].complete(1);
                if core.reroute(core.ep_span[ep], ep, req) {
                    core.rerouted.fetch_add(1, Ordering::Relaxed);
                }
            }
            core.drain_in_flight(ep, &in_flight);
            let _ = reader.join();
        }
        // Dead wait: drain racing submits into survivors, watch for a
        // revive. Control frames for the dead connection are dropped —
        // their round trips time out, exactly as if sent and lost.
        loop {
            if core.shutdown.load(Ordering::SeqCst) {
                return;
            }
            while ctrl_rx.try_recv().is_ok() {}
            if let Ok(duplex) = revive_rx.try_recv() {
                if let Some(d) = revive_handshake(&core, ep, duplex) {
                    conn = Some(d);
                    break;
                }
            }
            match clock.recv_timeout(&req_rx, READER_POLL) {
                Ok(req) => {
                    core.queues[ep].complete(1);
                    if core.reroute(core.ep_span[ep], ep, req) {
                        core.rerouted.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// Serve one connection generation until teardown or endpoint death.
fn serve_conn(
    core: &ClientCore,
    ep: usize,
    req_rx: &Receiver<Request>,
    ctrl_rx: &Receiver<Frame>,
    tx: &mut Box<dyn FrameTx>,
    in_flight: &InFlight,
    batch: &mut Vec<Request>,
) -> ConnExit {
    let clock = core.clock.clone();
    loop {
        while let Ok(f) = ctrl_rx.try_recv() {
            if tx.send(&f).is_err() {
                return ConnExit::Dead;
            }
        }
        if core.shutdown.load(Ordering::SeqCst) {
            return ConnExit::Teardown;
        }
        if !core.queues[ep].is_alive() {
            return ConnExit::Dead;
        }
        match clock.recv_timeout(req_rx, WORKER_POLL) {
            Ok(first) => {
                let disconnected = collect_batch_into(
                    &clock,
                    req_rx,
                    first,
                    batch,
                    core.cfg.max_batch,
                    core.cfg.max_delay,
                );
                if send_batch(core, ep, tx, batch, in_flight).is_err() {
                    return ConnExit::Dead;
                }
                if disconnected {
                    return ConnExit::Teardown; // client dropped
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return ConnExit::Teardown,
        }
        if check_retries(core, ep, tx, in_flight).is_err() {
            return ConnExit::Dead;
        }
    }
}

/// Handshake a revive connection: `Hello` → `ShardMap`, whose
/// `log_seq` is the restarted server's recovered snapshot watermark.
/// The appender's cursor for this endpoint is positioned there —
/// *before* the caller flips the queue alive — so the next ship pass
/// replays exactly the churn-log suffix the snapshot missed. Returns
/// `None` (endpoint stays dead) on any failure or a wrong-span server.
fn revive_handshake(core: &ClientCore, ep: usize, mut duplex: Duplex) -> Option<Duplex> {
    let span = core.ep_span[ep];
    if duplex.tx.send(&Frame::Hello { proto: WIRE_VERSION as u16 }).is_err() {
        return None;
    }
    match duplex.rx.recv_timeout(core.cfg.handshake_timeout) {
        Ok(Frame::ShardMap { my_span, live_keys, log_seq, .. }) => {
            if my_span as usize != span {
                return None; // a different server answered this address
            }
            // ordering: SeqCst — same control-plane ordering as the
            // reader-thread refreshes of this gauge.
            core.span_live[span].store(live_keys, Ordering::SeqCst);
            let _ =
                core.upd_ack_txs[span].send(EpEvent::Revive { pos: core.ep_pos[ep], seq: log_seq });
            core.flight(EventKind::EndpointRejoin, span as u16, ep as u32, log_seq);
            Some(duplex)
        }
        _ => None,
    }
}

/// Assign a request id, record the batch in flight, ship the frame.
///
/// A batch the endpoint's wire-trace ring samples is stamped with a
/// nonzero trace id (derived from the request id, so both sides of the
/// wire agree without coordination) and `parent` = the flat endpoint
/// index — the client span the server's stage records hang off.
fn send_batch(
    core: &ClientCore,
    ep: usize,
    tx: &mut Box<dyn FrameTx>,
    batch: &mut Vec<Request>,
    in_flight: &InFlight,
) -> Result<(), ()> {
    if batch.is_empty() {
        return Ok(());
    }
    let req = core.fresh_req();
    let now = core.clock.now();
    let mut keys = Vec::with_capacity(batch.len());
    let mut handles = Vec::with_capacity(batch.len());
    for r in batch.drain(..) {
        keys.push(r.key);
        handles.push(r.reply);
    }
    // `| 1` keeps a sampled id nonzero (0 means untraced on the wire).
    let trace =
        if core.wire_traces[ep].sample() { req.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1 } else { 0 };
    let frame = Frame::Lookup { req, trace, parent: ep as u32, keys: keys.clone() };
    // Record before sending: if the send fails, the death path drains
    // this batch out of the map and re-homes it — nothing is stranded.
    in_flight
        .lock()
        .expect("in-flight lock")
        .insert(req, BatchInFlight { keys, handles, sent_at: now, attempts: 1, trace });
    tx.send(&frame).map_err(|_| ())
}

/// Resend overdue batches (same request id: replies are deduplicated by
/// the in-flight map). A batch past `max_retries` fails the whole
/// endpoint — per-batch surrender would strand its sibling batches on a
/// connection that is clearly gone.
fn check_retries(
    core: &ClientCore,
    ep: usize,
    tx: &mut Box<dyn FrameTx>,
    in_flight: &InFlight,
) -> Result<(), ()> {
    let now = core.clock.now();
    let timeout = dur_ns(core.cfg.retry_timeout);
    let mut resend: Vec<(u64, u64, Vec<u32>)> = Vec::new();
    {
        let mut map = in_flight.lock().expect("in-flight lock");
        for (req, b) in map.iter_mut() {
            if now.saturating_sub(b.sent_at) < timeout {
                continue;
            }
            if b.attempts > core.cfg.max_retries {
                return Err(()); // endpoint unresponsive: fail over
            }
            b.attempts += 1;
            b.sent_at = now;
            resend.push((*req, b.trace, b.keys.clone()));
        }
    }
    for (req, trace, keys) in resend {
        core.retries.fetch_add(1, Ordering::Relaxed);
        // The resend reuses the original trace id: causally it is the
        // same request, and the reply joins whichever attempt answered.
        if tx.send(&Frame::Lookup { req, trace, parent: ep as u32, keys }).is_err() {
            return Err(());
        }
    }
    Ok(())
}

/// One span's churn-log appender: the single writer of the span's
/// replicated update log (neon-safekeeper shape, one level down).
///
/// Callers append epoch-stamped, sequence-numbered records; the
/// appender coalesces them ([`collect_batch_into`], the same machinery
/// the lookup path batches with), ships each live endpoint the log
/// suffix it has not yet been sent, and resolves a record's waiter only
/// once a **quorum** (majority of the span's live endpoints) has acked
/// its sequence. Replicas apply strictly in order from a per-connection
/// cursor, so an acked record is applied — never reordered, never
/// silently lost.
///
/// Failure handling:
/// * a lagging endpoint (acks stalled past `retry_timeout`) gets the
///   suffix past its ack point resent (`update_resends`); after
///   `max_retries` stalls it is declared dead;
/// * an endpoint death bumps the epoch (`elections`) and rewinds every
///   survivor's send cursor to its ack point, replaying the suffix the
///   laggards are missing — the surviving longest log wins by
///   construction, because the sequencer never moved;
/// * a span with no live endpoint left fails all pending appends
///   `ShuttingDown` — but **keeps its log tail** (see below), because a
///   snapshot-restarted server can still rejoin and be caught up.
///
/// The log is trimmed `log_retention` records below the minimum live
/// ack (not *at* it): the retained tail is the replay window a
/// [`NetHandle::rejoin`]ed endpoint catches up from. Sequences are
/// never reused — a record that once occupied a sequence is the only
/// record that ever will, so replaying the tail to a replica that
/// already folded part of it is safe (in-order apply trims duplicates;
/// membership ops are idempotent) while *reissuing* a sequence with
/// different content could silently diverge a checkpointed replica.
fn run_appender(
    core: Arc<ClientCore>,
    span: usize,
    upd_rx: Receiver<UpdMsg>,
    ack_rx: Receiver<EpEvent>,
) {
    let clock = core.clock.clone();
    let eps: Vec<usize> = core.span_eps[span].clone();
    let n = eps.len();
    let mut epoch = 1u64;
    // Sequences <= base are trimmed; log[i] is record base+1+i.
    let mut base = 0u64;
    let mut log: VecDeque<WireOp> = VecDeque::new();
    let mut acked = vec![0u64; n];
    let mut sent = vec![0u64; n];
    let mut progress_at = vec![clock.now(); n];
    let mut tries = vec![0u32; n];
    let mut was_alive: Vec<bool> = eps.iter().map(|&e| core.queues[e].is_alive()).collect();
    // A dead→alive transition is honored only once the endpoint's
    // `Revive` event has positioned its cursors. Without this gate, the
    // liveness scan could admit a revived endpoint while `acked` still
    // holds its *previous* life's high ack — counting toward quorum log
    // records the restarted server never applied. Endpoints alive at
    // start are trivially ready.
    let mut revive_ready: Vec<bool> = was_alive.clone();
    let mut waiters: VecDeque<(u64, ReplyHandle)> = VecDeque::new();
    let mut flushes: Vec<(u64, Sender<Result<(), ServeError>>)> = Vec::new();
    let mut batch: Vec<UpdMsg> = Vec::new();

    loop {
        if core.shutdown.load(Ordering::SeqCst) {
            for (_, h) in waiters.drain(..) {
                h.send(Err(ServeError::ShuttingDown));
            }
            for (_, tx) in flushes.drain(..) {
                let _ = tx.send(Err(ServeError::ShuttingDown));
            }
            return;
        }

        // Fold in acks and revives.
        while let Ok(ev) = ack_rx.try_recv() {
            match ev {
                EpEvent::Ack { pos, seq } => {
                    // An honest ack never exceeds the log head; clamping
                    // keeps a stray or corrupt one from dragging the trim
                    // watermark past the log it indexes.
                    let seq = seq.min(base + log.len() as u64);
                    if seq > acked[pos] {
                        acked[pos] = seq;
                        progress_at[pos] = clock.now();
                        tries[pos] = 0;
                    }
                }
                EpEvent::Revive { pos, seq } => {
                    if seq < base {
                        // The suffix this endpoint needs starts below the
                        // retained tail: it cannot be caught up from this
                        // log. Bury it — a future snapshot on its side
                        // (with a fresher watermark) can still rejoin.
                        core.queues[eps[pos]].mark_dead();
                        revive_ready[pos] = false;
                        continue;
                    }
                    // Both cursors land exactly on the snapshot
                    // watermark (clamped to the head — a server that
                    // folded records this appender already trimmed acks
                    // of is simply up to date): the next ship pass sends
                    // precisely the suffix the snapshot missed.
                    let seq = seq.min(base + log.len() as u64);
                    acked[pos] = seq;
                    sent[pos] = seq;
                    tries[pos] = 0;
                    progress_at[pos] = clock.now();
                    revive_ready[pos] = true;
                }
            }
        }

        // Election: any live→dead transition bumps the epoch and
        // rewinds every survivor's send cursor to its ack point, so the
        // next ship pass replays whatever suffix each laggard is
        // missing. (The longest-log survivor needs no catch-up: its
        // rewind re-sends nothing it has already acked.)
        let mut died = false;
        for (pos, &e) in eps.iter().enumerate() {
            let alive = core.queues[e].is_alive();
            if was_alive[pos] && !alive {
                died = true;
                // The next life must present a fresh Revive cursor.
                revive_ready[pos] = false;
            }
            if !was_alive[pos] && alive && !revive_ready[pos] {
                // Queue flipped alive but the Revive event hasn't been
                // folded in yet (it is in flight in this channel):
                // admit the endpoint on the pass that has its cursors.
                continue;
            }
            was_alive[pos] = alive;
        }
        if died {
            epoch += 1;
            core.elections.fetch_add(1, Ordering::Relaxed);
            core.flight(EventKind::Election, span as u16, 0, epoch);
            let now = clock.now();
            for pos in 0..n {
                if was_alive[pos] {
                    sent[pos] = acked[pos];
                    progress_at[pos] = now;
                    tries[pos] = 0;
                }
            }
        }

        // Collect new appends (coalesced exactly like lookup batches).
        match clock.recv_timeout(&upd_rx, APPENDER_POLL) {
            Ok(first) => {
                collect_batch_into(
                    &clock,
                    &upd_rx,
                    first,
                    &mut batch,
                    core.cfg.max_batch,
                    core.cfg.max_delay,
                );
                for msg in batch.drain(..) {
                    match msg {
                        UpdMsg::Op { op, reply } => {
                            log.push_back(op);
                            waiters.push_back((base + log.len() as u64, reply));
                        }
                        UpdMsg::Flush(tx) => flushes.push((base + log.len() as u64, tx)),
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            // The core owns a sender for the appender's whole lifetime;
            // disconnect means teardown already ran.
            Err(RecvTimeoutError::Disconnected) => return,
        }
        let last = base + log.len() as u64;

        // Ship + repair, per live endpoint.
        let now = clock.now();
        let timeout = dur_ns(core.cfg.retry_timeout);
        for (pos, &e) in eps.iter().enumerate() {
            if !was_alive[pos] {
                continue;
            }
            // Repair a stalled endpoint: rewind to its ack point and
            // resend that suffix; too many stalls and it is dead (the
            // election above fails the span over on the next pass).
            if acked[pos] < sent[pos] && now.saturating_sub(progress_at[pos]) >= timeout {
                if tries[pos] >= core.cfg.max_retries {
                    core.queues[e].mark_dead();
                    continue;
                }
                tries[pos] += 1;
                progress_at[pos] = now;
                sent[pos] = acked[pos];
                core.update_resends.fetch_add(1, Ordering::Relaxed);
                core.flight(EventKind::UpdateResend, span as u16, e as u32, acked[pos] + 1);
            }
            if sent[pos] < last {
                if sent[pos] == acked[pos] {
                    // Nothing was outstanding: the stall clock starts
                    // with this send, not at the last ack.
                    progress_at[pos] = now;
                }
                // Everything below `base` is trimmed away — a cursor
                // under it belongs to a replica the revive path already
                // buried (or is about to).
                let from = sent[pos].max(base);
                let ops: Vec<WireOp> = log.iter().skip((from - base) as usize).copied().collect();
                let frame = Frame::Update {
                    req: core.fresh_req(),
                    epoch,
                    seq: from + 1,
                    trace: 0,
                    parent: 0,
                    ops,
                };
                if core.ctrl_txs[e].send(frame).is_ok() {
                    sent[pos] = last;
                }
            }
        }

        // Quorum watermark: a record is durable once a majority of the
        // span's live endpoints has acked it.
        let mut live_acks: Vec<u64> = (0..n).filter(|&p| was_alive[p]).map(|p| acked[p]).collect();
        if live_acks.is_empty() {
            // No quorum is reachable: fail the pending appends (their
            // outcome is *unknown* — some replica may have applied them
            // before dying, and a revived endpoint may yet replay them;
            // membership ops are idempotent, so at-least-once is safe).
            for (_, h) in waiters.drain(..) {
                h.send(Err(ServeError::ShuttingDown));
            }
            for (_, tx) in flushes.drain(..) {
                let _ = tx.send(Err(ServeError::ShuttingDown));
            }
            // Keep the retained tail — never advance `base` over records
            // that existed: a snapshot-restarted server rejoins through
            // this very log, and re-issuing a consumed sequence with
            // different content could silently diverge a replica that
            // checkpointed the original.
            let head = base + log.len() as u64;
            let keep_from = head.saturating_sub(core.cfg.log_retention);
            if keep_from > base {
                log.drain(..(keep_from - base) as usize);
                base = keep_from;
            }
            continue;
        }
        live_acks.sort_unstable_by(|a, b| b.cmp(a));
        let quorum = live_acks.len() / 2 + 1;
        let durable = live_acks[quorum - 1];
        while let Some(&(seq, _)) = waiters.front() {
            if seq > durable {
                break;
            }
            let (_, h) = waiters.pop_front().expect("non-empty: just peeked");
            h.send(Ok(0));
        }

        // A flush resolves only when *every* live endpoint has acked
        // its target — stronger than quorum, because the quiesce
        // barrier that follows it must find all replicas caught up.
        let min_live = *live_acks.last().expect("non-empty checked above");
        flushes.retain(|(target, tx)| {
            if *target <= min_live {
                let _ = tx.send(Ok(()));
                false
            } else {
                true
            }
        });

        // Trim, retaining `log_retention` records *below* the fully-acked
        // watermark — the replay window a snapshot-restarted endpoint
        // catches up from when it rejoins.
        let keep_from = min_live.saturating_sub(core.cfg.log_retention);
        if keep_from > base {
            log.drain(..(keep_from - base) as usize);
            base = keep_from;
        }
    }
}

/// The per-endpoint receiver: match replies to in-flight batches, fill
/// reply slots (adding the span's base rank), and detect endpoint
/// death. Owns the connection's receive half.
fn run_reader(core: Arc<ClientCore>, ep: usize, mut rx: Box<dyn FrameRx>, in_flight: InFlight) {
    let span = core.ep_span[ep];
    loop {
        if core.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(READER_POLL) {
            Ok(Frame::Reply { req, trace: _, parent: _, results }) => {
                // A duplicate (or retried-and-answered-twice) reply
                // finds no entry and is dropped here — the "no
                // duplicated replies" half of the retry contract.
                let Some(b) = in_flight.lock().expect("in-flight lock").remove(&req) else {
                    continue;
                };
                let served = b.handles.len();
                // Wire stages: `sent_at` is the frame's encode/send
                // instant (refreshed on retry, so a retried batch
                // reports its *answered* attempt's round trip). The
                // sampling decision was made at send time (it chose the
                // frame's trace id); a nonzero id means record.
                let acked = core.clock.now();
                core.wire_rtt.record(acked.saturating_sub(b.sent_at));
                if b.trace != 0 {
                    core.wire_traces[ep].push(&StageRecord {
                        trace: b.trace,
                        shard: span as u16,
                        replica: ep as u16,
                        batch_len: served as u32,
                        encoded_ns: b.sent_at,
                        acked_ns: acked,
                        ..StageRecord::default()
                    });
                }
                let base = core.span_base(span);
                // Positional alignment; a short result list (protocol
                // corruption) drop-fills the leftovers ShuttingDown.
                let mut sheds = 0u32;
                for (handle, res) in b.handles.into_iter().zip(results) {
                    handle.send(match res {
                        LookupStatus::Rank(r) => Ok(base + r),
                        LookupStatus::Shed(shard) => {
                            sheds += 1;
                            Err(ServeError::Overloaded { shard: shard as usize })
                        }
                        LookupStatus::Shutdown => Err(ServeError::ShuttingDown),
                    });
                }
                if sheds > 0 {
                    core.flight(EventKind::ShedBurst, span as u16, sheds, 0);
                }
                core.queues[ep].complete(served);
            }
            Ok(Frame::UpdateAck { req: _, epoch: _, seq }) => {
                // Update acks feed the span's appender (quorum
                // tracking), not the ctrl waiter map: the ack's meaning
                // is its log position, not its request id.
                let _ = core.upd_ack_txs[span].send(EpEvent::Ack { pos: core.ep_pos[ep], seq });
            }
            Ok(Frame::QuiesceAck { req, live_keys, snapshots: _ })
            | Ok(Frame::EpochPong { req, live_keys, snapshots: _ }) => {
                // ordering: SeqCst — the refreshed live count must be
                // ordered before the ctrl reply below releases the caller
                // that requested it (rank composition reads it next).
                core.span_live[span].store(live_keys, Ordering::SeqCst);
                core.ctrl_fill(req, CtrlReply::Ack);
            }
            Ok(Frame::StatsReply { req, stats }) => {
                core.ctrl_fill(req, CtrlReply::Stats(stats));
            }
            Ok(Frame::Status { code: StatusCode::ShuttingDown }) | Err(NetError::Closed) => {
                // Endpoint gone: mark dead before draining so reroutes
                // can't land back here, then re-home the wire batches.
                // The worker notices the flag and drains the submit
                // queue side.
                core.queues[ep].mark_dead();
                core.drain_in_flight(ep, &in_flight);
                return;
            }
            Ok(_) => {} // server-bound frames: protocol noise, ignore
            Err(NetError::Timeout) => {
                if !core.queues[ep].is_alive() {
                    return;
                }
            }
            Err(_) => {
                core.queues[ep].mark_dead();
                core.drain_in_flight(ep, &in_flight);
                return;
            }
        }
    }
}

// -------------------------------------------------------------- client

/// A lookup submitted over the transport, not yet answered. Same
/// contract as [`dini_serve::PendingLookup`]: block with
/// [`wait`](Self::wait) or reap with [`poll`](Self::poll).
#[derive(Debug)]
pub struct PendingNetLookup {
    slot: ReplySlot,
}

impl PendingNetLookup {
    /// Block for the (globally composed) rank.
    pub fn wait(self) -> Result<u32, ServeError> {
        self.slot.wait()
    }

    /// The rank if it has arrived, `None` while in flight.
    pub fn poll(&self) -> Option<Result<u32, ServeError>> {
        self.slot.poll()
    }
}

/// An update appended to a span's replicated churn log, not yet
/// quorum-acked. [`wait`](Self::wait) blocks for the durability verdict.
#[derive(Debug)]
pub struct PendingNetUpdate {
    slot: ReplySlot,
}

impl PendingNetUpdate {
    /// Block until the record is quorum-acked (`Ok`) or the span can no
    /// longer reach a quorum (`Err`).
    pub fn wait(self) -> Result<(), ServeError> {
        self.slot.wait().map(|_| ())
    }

    /// The verdict if it has arrived, `None` while still replicating.
    pub fn poll(&self) -> Option<Result<(), ServeError>> {
        self.slot.poll().map(|r| r.map(|_| ()))
    }
}

/// A cheap, cloneable caller handle onto a [`RemoteClient`] (the
/// transport analogue of [`dini_serve::ServerHandle`]). Clones carry
/// their own routing tick and can be moved to other threads.
pub struct NetHandle {
    core: Arc<ClientCore>,
    tick: AtomicU64,
}

impl Clone for NetHandle {
    fn clone(&self) -> Self {
        Self { core: self.core.clone(), tick: AtomicU64::new(0) }
    }
}

impl NetHandle {
    fn enqueue(&self, key: u32, blocking: bool) -> Result<PendingNetLookup, ServeError> {
        let core = &self.core;
        let span = core.span_router.route(key);
        let eps = &core.span_eps[span];
        // ordering: relaxed-ok: per-handle rotation phase; atomicity only.
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let Some(choice) = core.selectors[span].select(tick, |i| core.queues[eps[i]].probe())
        else {
            return Err(ServeError::ShuttingDown);
        };
        let (slot, handle) = core.pools[span].take();
        let req = Request { key, enqueued: core.clock.now(), trace: 0, reply: handle };
        let q = &core.queues[eps[choice]];
        if blocking {
            q.submit(req)?;
        } else {
            q.try_submit(req)?;
        }
        Ok(PendingNetLookup { slot })
    }

    /// Rank of `key` across the whole cluster, blocking while the
    /// chosen endpoint's queue is full.
    pub fn lookup(&self, key: u32) -> Result<u32, ServeError> {
        self.enqueue(key, true)?.wait()
    }

    /// Rank of `key`, shedding instead of blocking on a full endpoint
    /// queue.
    pub fn try_lookup(&self, key: u32) -> Result<u32, ServeError> {
        self.enqueue(key, false)?.wait()
    }

    /// Submit without waiting (sheds on a full endpoint queue).
    pub fn begin_lookup(&self, key: u32) -> Result<PendingNetLookup, ServeError> {
        self.enqueue(key, false)
    }

    /// Rank every key, preserving order; submits everything first so the
    /// slice coalesces into few frames.
    pub fn lookup_many(&self, keys: &[u32]) -> Result<Vec<u32>, ServeError> {
        let mut replies = Vec::with_capacity(keys.len());
        for &k in keys {
            replies.push(self.enqueue(k, true)?);
        }
        replies.into_iter().map(PendingNetLookup::wait).collect()
    }

    /// Append one churn operation to the owning span's replicated log
    /// without waiting; the returned [`PendingNetUpdate`] resolves once
    /// the record is quorum-acked. `Op::Query` resolves immediately.
    pub fn begin_update(&self, op: Op) -> Result<PendingNetUpdate, ServeError> {
        let core = &self.core;
        let (key, wire_op) = match op {
            Op::Insert(k) => (k, WireOp::Insert(k)),
            Op::Delete(k) => (k, WireOp::Delete(k)),
            Op::Query(_) => {
                // Accepted-and-ignored, pre-resolved: whole ChurnGen
                // streams feed through unfiltered, as locally.
                let (slot, handle) = reply_pair();
                handle.send(Ok(0));
                return Ok(PendingNetUpdate { slot });
            }
        };
        let span = core.span_router.route(key);
        let (slot, handle) = core.upd_pools[span].take();
        core.clock
            .send(&core.upd_txs[span], UpdMsg::Op { op: wire_op, reply: handle })
            .map_err(|_| ServeError::ShuttingDown)?;
        Ok(PendingNetUpdate { slot })
    }

    /// Apply one churn operation through the owning span's replicated
    /// log, blocking until a **quorum** (majority of the span's live
    /// endpoints) has acknowledged applying it in log order.
    ///
    /// # Errors
    ///
    /// `Ok(())` means the record is durably applied on a quorum and
    /// will survive any single endpoint failure; `Err(ShuttingDown)`
    /// means the span could not reach a quorum and the op must be
    /// considered not applied. There is no silent third state — this is
    /// the contract change from the fire-and-forget broadcast, whose
    /// `Ok` meant only "one send was queued".
    pub fn update(&self, op: Op) -> Result<(), ServeError> {
        self.begin_update(op)?.wait()
    }

    /// Barrier: every previously appended update is applied and
    /// published on every live endpoint of every span, and the client's
    /// cross-span base ranks are refreshed from the acks.
    ///
    /// Two phases per span: first a log **flush** (all live endpoints
    /// caught up to the log head — the appender repairs or buries
    /// laggards), then a `Quiesce` round trip per endpoint so each
    /// publishes what it applied. An endpoint that stops answering
    /// mid-barrier is marked dead and the barrier proceeds with the
    /// survivors; only a span with no live endpoint left fails the
    /// barrier.
    pub fn quiesce(&self) -> Result<(), ServeError> {
        let core = &self.core;
        for span in 0..core.span_eps.len() {
            let (tx, rx) = bounded(1);
            core.clock
                .send(&core.upd_txs[span], UpdMsg::Flush(tx))
                .map_err(|_| ServeError::ShuttingDown)?;
            core.clock.recv(&rx).map_err(|_| ServeError::ShuttingDown)??;
            let mut reached = false;
            for &e in &core.span_eps[span] {
                if !core.queues[e].is_alive() {
                    continue;
                }
                match core.ctrl_roundtrip(e, |req| Frame::Quiesce { req }) {
                    Ok(_) => reached = true,
                    // A failed round trip is this endpoint's failure,
                    // not the barrier's: bury it (its backlog re-homes
                    // through the usual death path) and carry on with
                    // the span's survivors.
                    Err(_) => core.queues[e].mark_dead(),
                }
            }
            if !reached {
                return Err(ServeError::ShuttingDown);
            }
        }
        Ok(())
    }

    /// Refresh every span's live-key count (and therefore the base
    /// ranks) with epoch pings — cheaper than [`quiesce`](Self::quiesce),
    /// no barrier.
    pub fn refresh(&self) -> Result<(), ServeError> {
        let core = &self.core;
        for span in 0..core.span_eps.len() {
            let mut reached = false;
            for &e in &core.span_eps[span] {
                if !core.queues[e].is_alive() {
                    continue;
                }
                if core.ctrl_roundtrip(e, |req| Frame::EpochPing { req }).is_ok() {
                    reached = true;
                    break;
                }
            }
            if !reached {
                return Err(ServeError::ShuttingDown);
            }
        }
        Ok(())
    }

    /// Total live keys across all spans, as of the last refresh.
    pub fn live_keys(&self) -> u64 {
        // ordering: relaxed-ok: advisory total for reporting; staleness
        // only lags the gauge, it cannot corrupt routing or ranks.
        self.core.span_live.iter().map(|a| a.load(Ordering::Relaxed)).sum()
    }

    /// Number of spans in the shard map.
    pub fn n_spans(&self) -> usize {
        self.core.span_eps.len()
    }

    /// Which span serves `key` (the client's own routing, exposed for
    /// oracles).
    pub fn span_of(&self, key: u32) -> usize {
        self.core.span_router.route(key)
    }

    /// Is any endpoint of `span` still alive?
    pub fn span_alive(&self, span: usize) -> bool {
        self.core.span_eps[span].iter().any(|&e| self.core.queues[e].is_alive())
    }

    /// Is the endpoint at `addr` (as listed in the connect-time shard
    /// map) currently alive?
    pub fn endpoint_alive(&self, addr: &str) -> bool {
        self.core
            .ep_addrs
            .iter()
            .position(|a| a == addr)
            .is_some_and(|ep| self.core.queues[ep].is_alive())
    }

    /// Reconnect a dead endpoint whose server came back — typically a
    /// span process restarted from its `dini-store` snapshot
    /// ([`NetServer::restart`](crate::NetServer::restart)). Dials the
    /// address and hands the fresh connection to the endpoint's worker,
    /// which handshakes it: the server's `ShardMap` carries its
    /// recovered churn-log watermark, the span appender rewinds this
    /// endpoint's cursor there, ships the retained log suffix, and the
    /// endpoint rejoins quorum, lookups, and barriers exactly caught up.
    ///
    /// Returns once the connection is handed off (the handshake and
    /// catch-up run on the worker); poll
    /// [`endpoint_alive`](Self::endpoint_alive) to observe the rejoin
    /// completing. An already-alive endpoint is a no-op. Errors are the
    /// dial's; a failed handshake leaves the endpoint dead, to try
    /// again.
    pub fn rejoin(&self, addr: &str) -> Result<(), NetError> {
        let core = &self.core;
        let Some(ep) = core.ep_addrs.iter().position(|a| a == addr) else {
            return Err(NetError::Refused(format!("{addr} is not in the shard map")));
        };
        if core.queues[ep].is_alive() {
            return Ok(());
        }
        let duplex = core.dialer.dial(addr)?;
        core.revive_txs[ep].send(duplex).map_err(|_| NetError::Closed)?;
        Ok(())
    }

    /// The clock this client waits on.
    pub fn clock(&self) -> &Clock {
        &self.core.clock
    }

    /// Point-in-time client-side accounting.
    pub fn stats(&self) -> NetClientStats {
        let core = &self.core;
        NetClientStats {
            retries: core.retries.load(Ordering::Relaxed),
            rerouted: core.rerouted.load(Ordering::Relaxed),
            client_shed: core.queues.iter().map(AdmissionQueue::shed).sum(),
            admitted: core.queues.iter().map(AdmissionQueue::admitted).sum(),
            update_resends: core.update_resends.load(Ordering::Relaxed),
            elections: core.elections.load(Ordering::Relaxed),
        }
    }

    /// Poll one span process for its live server-side stats (queue
    /// depths, per-replica service split, latency quantiles,
    /// stage-trace sums) over the wire — a cheap, barrier-free
    /// [`Frame::StatsRequest`] round trip to the first live endpoint of
    /// `span`. This is what `dini_top` refreshes on.
    pub fn span_stats(&self, span: usize) -> Result<StatsMsg, ServeError> {
        let core = &self.core;
        for &e in &core.span_eps[span] {
            if !core.queues[e].is_alive() {
                continue;
            }
            match core.ctrl_roundtrip(e, |req| Frame::StatsRequest { req }) {
                Ok(CtrlReply::Stats(stats)) => return Ok(*stats),
                Ok(CtrlReply::Ack) => continue, // protocol noise; try a sibling
                Err(_) => continue,
            }
        }
        Err(ServeError::ShuttingDown)
    }

    /// Client-observed wire round-trip distribution (frame send → reply
    /// receipt), nanoseconds, across all endpoints.
    pub fn wire_rtt(&self) -> LogHistogram {
        self.core.wire_rtt.snapshot()
    }

    /// Sampled wire-stage records (`encoded_ns` → `acked_ns`; the serve
    /// stages are zero — those live server-side), endpoint-major. Each
    /// record's `shard` is the span, `replica` the flat endpoint index,
    /// `batch_len` the frame's key count.
    pub fn wire_traces(&self) -> Vec<StageRecord> {
        self.core.wire_traces.iter().flat_map(|r| r.snapshot()).collect()
    }
}

/// A connected client: owns the per-endpoint worker/reader threads and
/// hands out cloneable [`NetHandle`]s. Dropping it re-homes nothing —
/// it shuts the transport down; outstanding lookups resolve
/// `ShuttingDown`.
pub struct RemoteClient {
    handle: NetHandle,
    threads: Vec<ClockJoinHandle<()>>,
}

impl RemoteClient {
    /// Dial `bootstrap`, learn the shard map from its handshake, connect
    /// to every endpoint, and refresh the cross-span base ranks.
    pub fn connect(
        dialer: Box<dyn Dialer>,
        bootstrap: &str,
        cfg: ClientConfig,
    ) -> Result<Self, NetError> {
        let clock = cfg.clock.clone();

        // Handshake: any server teaches us the whole topology. Retried
        // with a fresh connection per attempt — on a lossy link the
        // Hello (or the ShardMap) can be dropped in flight.
        let mut handshake: Option<(Topology, usize, u64)> = None;
        let mut last_err = NetError::Timeout;
        for _ in 0..=cfg.max_retries {
            let mut boot = match dialer.dial(bootstrap) {
                Ok(b) => b,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            if let Err(e) = boot.tx.send(&Frame::Hello { proto: WIRE_VERSION as u16 }) {
                last_err = e;
                continue;
            }
            match boot.rx.recv_timeout(cfg.handshake_timeout) {
                Ok(Frame::ShardMap { spans, my_span, live_keys, .. }) => {
                    // The watermark fields matter to *rejoin* handshakes
                    // (the appender rewinds a revived endpoint's cursor
                    // there); a cold connect has no cursor to rewind.
                    handshake = Some((Topology::from_wire(&spans), my_span as usize, live_keys));
                    break;
                }
                Ok(other) => {
                    return Err(NetError::Protocol(format!("expected ShardMap, got {other:?}")))
                }
                Err(e) => last_err = e,
            }
        }
        let Some((topology, boot_span, boot_live)) = handshake else {
            return Err(last_err);
        };
        topology.check().map_err(|why| NetError::Protocol(why.to_owned()))?;
        if boot_span >= topology.n_spans() {
            return Err(NetError::Protocol("handshake span out of range".to_owned()));
        }

        // Wire up every endpoint (span-major order, deterministic).
        let n_spans = topology.n_spans();
        let mut queues = Vec::new();
        let mut ctrl_txs = Vec::new();
        let mut span_eps: Vec<Vec<usize>> = Vec::with_capacity(n_spans);
        let mut ep_span = Vec::new();
        let mut ep_pos = Vec::new();
        let mut plumbing: Vec<EndpointPipes> = Vec::new();
        let mut revive_txs = Vec::new();
        let mut ep_addrs = Vec::new();
        for (span, s) in topology.spans.iter().enumerate() {
            let mut eps = Vec::with_capacity(s.endpoints.len());
            for (pos, addr) in s.endpoints.iter().enumerate() {
                let ep = queues.len();
                let (req_tx, req_rx) = bounded::<Request>(cfg.queue_capacity);
                let (ctl_tx, ctl_rx) = unbounded::<Frame>();
                let (rev_tx, rev_rx) = bounded::<Duplex>(1);
                let queue = AdmissionQueue::new(span, pos, req_tx, clock.clone());
                let conn = match dialer.dial(addr) {
                    Ok(duplex) => Some(duplex),
                    Err(_) => {
                        // Unreachable from the start: a dead endpoint,
                        // exactly as if it crashed later — its worker
                        // starts in the dead-wait loop, rejoinable.
                        queue.mark_dead();
                        None
                    }
                };
                plumbing.push((req_rx, ctl_rx, conn, rev_rx));
                revive_txs.push(rev_tx);
                ep_addrs.push(addr.clone());
                queues.push(queue);
                ctrl_txs.push(ctl_tx);
                ep_span.push(span);
                ep_pos.push(pos);
                eps.push(ep);
            }
            if !eps.iter().any(|&e| queues[e].is_alive()) {
                return Err(NetError::Refused(format!("no endpoint of span {span} is reachable")));
            }
            span_eps.push(eps);
        }

        let selectors = span_eps.iter().map(|eps| ReplicaSelector::new(eps.len())).collect();
        let pools = span_eps
            .iter()
            .map(|eps| {
                SlotPool::with_clock(
                    (cfg.queue_capacity + cfg.max_batch) * eps.len(),
                    clock.clone(),
                )
            })
            .collect();
        // Per-span churn-log plumbing: one appender thread per span
        // (the span's single log writer), fed through a bounded append
        // queue and an unbounded ack route from the endpoint readers.
        let mut upd_txs = Vec::with_capacity(n_spans);
        let mut upd_rxs = Vec::with_capacity(n_spans);
        let mut upd_ack_txs = Vec::with_capacity(n_spans);
        let mut upd_ack_rxs = Vec::with_capacity(n_spans);
        for _ in 0..n_spans {
            let (tx, rx) = bounded::<UpdMsg>(cfg.queue_capacity);
            upd_txs.push(tx);
            upd_rxs.push(rx);
            let (atx, arx) = unbounded::<EpEvent>();
            upd_ack_txs.push(atx);
            upd_ack_rxs.push(arx);
        }
        let upd_pools: Vec<SlotPool> = (0..n_spans)
            .map(|_| SlotPool::with_clock(cfg.queue_capacity + cfg.max_batch, clock.clone()))
            .collect();
        let span_live: Vec<AtomicU64> = (0..n_spans).map(|_| AtomicU64::new(0)).collect();
        // ordering: SeqCst to match the reader-thread refreshes — span
        // liveness is control-plane state, kept at one ordering everywhere.
        span_live[boot_span].store(boot_live, Ordering::SeqCst);

        // One wire-trace ring per endpoint (its reader thread is the
        // single writer), seeds decorrelated the same way the server
        // decorrelates replica rings.
        let wire_traces: Vec<TraceRing> = (0..queues.len())
            .map(|ep| {
                let salt = (ep as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                TraceRing::new(&TraceConfig { seed: cfg.trace.seed ^ salt, ..cfg.trace.clone() })
            })
            .collect();
        let core = Arc::new(ClientCore {
            cfg,
            clock: clock.clone(),
            span_router: topology.router(),
            selectors,
            queues,
            ctrl_txs,
            span_eps,
            ep_span,
            ep_pos,
            pools,
            upd_txs,
            upd_pools,
            upd_ack_txs,
            dialer,
            ep_addrs,
            revive_txs,
            span_live,
            ctrl: Mutex::new(BTreeMap::new()),
            next_req: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            retries: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            update_resends: AtomicU64::new(0),
            elections: AtomicU64::new(0),
            wire_rtt: AtomicLogHistogram::new(),
            wire_traces,
        });

        // One lifecycle worker per endpoint — dead ones included, so a
        // server that comes back later can rejoin. Each worker spawns
        // (and joins) its own per-generation reader.
        let mut threads = Vec::new();
        for (ep, (req_rx, ctl_rx, conn, rev_rx)) in plumbing.into_iter().enumerate() {
            let c = core.clone();
            threads.push(clock.spawn(&format!("dini-net-cw-{ep}"), move || {
                run_worker(c, ep, req_rx, ctl_rx, conn, rev_rx)
            }));
        }
        for (span, (upd_rx, ack_rx)) in upd_rxs.into_iter().zip(upd_ack_rxs).enumerate() {
            let c = core.clone();
            threads.push(clock.spawn(&format!("dini-net-ua-{span}"), move || {
                run_appender(c, span, upd_rx, ack_rx)
            }));
        }

        let client = Self { handle: NetHandle { core, tick: AtomicU64::new(0) }, threads };
        // Base ranks need every span's live count, not just bootstrap's.
        client.handle.refresh().map_err(|_| {
            NetError::Protocol("could not refresh live counts from every span".to_owned())
        })?;
        Ok(client)
    }

    /// A cloneable caller handle.
    pub fn handle(&self) -> NetHandle {
        self.handle.clone()
    }

    /// See [`NetHandle::lookup`].
    pub fn lookup(&self, key: u32) -> Result<u32, ServeError> {
        self.handle.lookup(key)
    }

    /// See [`NetHandle::begin_lookup`].
    pub fn begin_lookup(&self, key: u32) -> Result<PendingNetLookup, ServeError> {
        self.handle.begin_lookup(key)
    }

    /// See [`NetHandle::lookup_many`].
    pub fn lookup_many(&self, keys: &[u32]) -> Result<Vec<u32>, ServeError> {
        self.handle.lookup_many(keys)
    }

    /// See [`NetHandle::update`].
    pub fn update(&self, op: Op) -> Result<(), ServeError> {
        self.handle.update(op)
    }

    /// See [`NetHandle::begin_update`].
    pub fn begin_update(&self, op: Op) -> Result<PendingNetUpdate, ServeError> {
        self.handle.begin_update(op)
    }

    /// See [`NetHandle::quiesce`].
    pub fn quiesce(&self) -> Result<(), ServeError> {
        self.handle.quiesce()
    }

    /// See [`NetHandle::stats`].
    pub fn stats(&self) -> NetClientStats {
        self.handle.stats()
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        // ordering: SeqCst — teardown flag, checked by lookup entry points
        // and reader drains; cold path, strongest ordering for free.
        self.handle.core.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Closed-loop load over a [`NetHandle`]: `clients` OS threads each
/// issue `lookups_per_client` blocking lookups drawn from `dist`
/// (seeded per client with `seed + id`), with caller-observed latency
/// recorded per lookup — the remote analogue of
/// [`dini_serve::run_load`]'s closed mode, returning the same
/// [`LoadReport`](dini_serve::LoadReport) shape so in-process and
/// over-the-wire summaries are directly comparable. Wall-clock
/// timestamped (`Instant`), so this is for natively clocked clients —
/// benches and demos, not simtest scenarios.
pub fn run_net_load(
    handle: &NetHandle,
    dist: dini_workload::KeyDistribution,
    seed: u64,
    clients: usize,
    lookups_per_client: usize,
) -> dini_serve::LoadReport {
    use std::time::Instant;

    // lint: wall-clock-ok: wall-clock duration of a real TCP load run is the quantity reported.
    let start = Instant::now();
    let results: Vec<(u64, LogHistogram)> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients)
            .map(|id| {
                let h = handle.clone();
                scope.spawn(move || {
                    let mut gen = dini_workload::KeyGen::new(seed + id as u64, dist);
                    let mut hist = LogHistogram::new();
                    let mut completed = 0u64;
                    for _ in 0..lookups_per_client {
                        // lint: wall-clock-ok: wall-clock latency of a real TCP lookup is the quantity reported.
                        let t0 = Instant::now();
                        if h.lookup(gen.next_key()).is_ok() {
                            hist.record(t0.elapsed().as_nanos() as f64);
                            completed += 1;
                        }
                    }
                    (completed, hist)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("net load client panicked")).collect()
    });
    let mut report = dini_serve::LoadReport {
        wall: start.elapsed(),
        completed: 0,
        shed: 0,
        latency_ns: LogHistogram::new(),
    };
    for (completed, hist) in results {
        report.completed += completed;
        report.latency_ns.merge(&hist);
    }
    report
}
