//! Cluster topology: which servers host which slice of the key space.
//!
//! The key space is carved into contiguous **spans** (the network-level
//! analogue of `dini-serve`'s shards — each span's server shards its
//! slice further internally). Every span is served by one or more
//! **replica endpoints**: independent server processes holding a full
//! copy of the span, which is what the client fails over between when a
//! connection dies. Range partitioning — not hashing — is what keeps
//! global ranks composable across processes:
//! `global_rank = Σ live_keys(lower spans) + span_local_rank`, the
//! paper's master/slave rank composition lifted to the process level.

use crate::wire::SpanMsg;
use dini_serve::ShardRouter;

/// One span: a contiguous key slice and the endpoints replicating it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Smallest key this span owns (span 0 must own from 0).
    pub lo_key: u32,
    /// Addresses of the replica servers hosting this span.
    pub endpoints: Vec<String>,
}

/// The whole cluster's span layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Spans in ascending `lo_key` order; together they tile `u32`.
    pub spans: Vec<Span>,
}

impl Topology {
    /// A single-span topology: one replica group of `endpoints` hosting
    /// the entire key space.
    pub fn single(endpoints: Vec<String>) -> Self {
        Self { spans: vec![Span { lo_key: 0, endpoints }] }
    }

    /// Is the layout serviceable? At least one span, span 0 starting at
    /// key 0, strictly increasing `lo_key`s, and at least one endpoint
    /// per span. Returns the violation instead of panicking, so a
    /// client can reject a nonsensical wire-received map gracefully.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.spans.is_empty() {
            return Err("topology needs at least one span");
        }
        if self.spans[0].lo_key != 0 {
            return Err("span 0 must own the key space from 0");
        }
        if !self.spans.windows(2).all(|w| w[0].lo_key < w[1].lo_key) {
            return Err("span lo_keys must be strictly increasing");
        }
        if !self.spans.iter().all(|s| !s.endpoints.is_empty()) {
            return Err("every span needs at least one endpoint");
        }
        Ok(())
    }

    /// Panic unless [`check`](Self::check) passes (builder-time use).
    pub fn validate(&self) {
        if let Err(why) = self.check() {
            panic!("{why}");
        }
    }

    /// A key→span router (the same delimiter binary search
    /// `dini-serve`'s [`ShardRouter`] runs one level down).
    pub fn router(&self) -> ShardRouter {
        ShardRouter::from_delimiters(self.spans[1..].iter().map(|s| s.lo_key).collect())
    }

    /// Number of spans.
    pub fn n_spans(&self) -> usize {
        self.spans.len()
    }

    /// The wire representation ([`crate::wire::Frame::ShardMap`]).
    pub fn to_wire(&self) -> Vec<SpanMsg> {
        self.spans
            .iter()
            .map(|s| SpanMsg { lo_key: s.lo_key, endpoints: s.endpoints.clone() })
            .collect()
    }

    /// Rebuild from the wire representation.
    pub fn from_wire(spans: &[SpanMsg]) -> Self {
        Self {
            spans: spans
                .iter()
                .map(|s| Span { lo_key: s.lo_key, endpoints: s.endpoints.clone() })
                .collect(),
        }
    }

    /// Split a sorted-unique global key set into per-span slices along
    /// the span boundaries (what each span's server is built over).
    pub fn split<'a>(&self, keys: &'a [u32]) -> Vec<&'a [u32]> {
        let mut out = Vec::with_capacity(self.spans.len());
        let mut start = 0usize;
        for s in &self.spans[1..] {
            let end = start + keys[start..].partition_point(|&k| k < s.lo_key);
            out.push(&keys[start..end]);
            start = end;
        }
        out.push(&keys[start..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_span_owns_everything() {
        let t = Topology::single(vec!["a".into(), "b".into()]);
        t.validate();
        assert_eq!(t.n_spans(), 1);
        let r = t.router();
        assert_eq!(r.route(0), 0);
        assert_eq!(r.route(u32::MAX), 0);
    }

    #[test]
    fn split_and_router_agree() {
        let t = Topology {
            spans: vec![
                Span { lo_key: 0, endpoints: vec!["a".into()] },
                Span { lo_key: 100, endpoints: vec!["b".into()] },
                Span { lo_key: 1_000, endpoints: vec!["c".into()] },
            ],
        };
        t.validate();
        let keys: Vec<u32> = (0..200).map(|i| i * 10).collect();
        let parts = t.split(&keys);
        assert_eq!(parts.len(), 3);
        let r = t.router();
        for (s, part) in parts.iter().enumerate() {
            for &k in *part {
                assert_eq!(r.route(k), s, "key {k}");
            }
        }
        let glued: Vec<u32> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        assert_eq!(glued, keys);
    }

    #[test]
    fn wire_round_trip() {
        let t = Topology {
            spans: vec![
                Span { lo_key: 0, endpoints: vec!["a:1".into()] },
                Span { lo_key: 7, endpoints: vec!["b:2".into(), "c:3".into()] },
            ],
        };
        assert_eq!(Topology::from_wire(&t.to_wire()), t);
    }

    #[test]
    #[should_panic(expected = "span 0 must own")]
    fn nonzero_first_span_rejected() {
        Topology { spans: vec![Span { lo_key: 5, endpoints: vec!["a".into()] }] }.validate();
    }
}
