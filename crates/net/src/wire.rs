//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame travels as
//!
//! ```text
//!   [ len: u32 LE ][ version: u8 ][ kind: u8 ][ body… ]
//!   '---- 4 B ----''------------- len bytes ----------'
//! ```
//!
//! with all integers little-endian. `len` counts the bytes *after* the
//! prefix and is bounded by [`MAX_FRAME_LEN`], so a corrupt length can
//! never drive an allocation. Decoding is total: any truncated,
//! oversized, trailing-garbage, unknown-version, or unknown-tag input
//! returns a [`WireError`] — never a panic — which `prop_wire.rs` pins
//! with randomized corruption.
//!
//! The frame set is the dispatcher↔caller boundary, serialized:
//!
//! | frame | direction | carries |
//! |---|---|---|
//! | [`Frame::Hello`] | client → server | protocol version |
//! | [`Frame::ShardMap`] | server → client | span delimiters + replica endpoints + the server's span, live-key count, and churn-log watermark |
//! | [`Frame::Lookup`] | client → server | one coalesced key batch under a request id |
//! | [`Frame::Reply`] | server → client | per-key rank / shed / shutdown |
//! | [`Frame::Update`] | client → server | an epoch-stamped, sequence-numbered churn-log suffix |
//! | [`Frame::UpdateAck`] | server → client | highest contiguously applied log sequence (when requested) |
//! | [`Frame::Quiesce`] / [`Frame::QuiesceAck`] | round trip | update-visibility barrier + fresh live count |
//! | [`Frame::EpochPing`] / [`Frame::EpochPong`] | round trip | snapshot-epoch / live-count refresh |
//! | [`Frame::Status`] | server → client | shed/shutdown notice for the whole connection |
//! | [`Frame::StatsRequest`] / [`Frame::StatsReply`] | round trip | live introspection: queue depths, per-replica service split, latency quantiles, stage-trace sums |

/// Protocol version carried by every frame; decoders reject all others.
/// Version 2 restamped [`Frame::Update`] / [`Frame::UpdateAck`] with the
/// replicated churn log's epoch and sequence fields. Version 3 added the
/// server's recovered churn-log watermark to [`Frame::ShardMap`], so a
/// client (re)joining a snapshot-restarted span knows which log suffix
/// to replay. Version 4 added the causal trace context (`trace` +
/// `parent`) to [`Frame::Lookup`] / [`Frame::Update`] / [`Frame::Reply`]
/// and the key-range heat counters to [`Frame::StatsReply`].
pub const WIRE_VERSION: u8 = 4;

/// Upper bound on the post-prefix length of one frame (16 MiB): a
/// corrupt or hostile length prefix is rejected before any allocation.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

const KIND_HELLO: u8 = 1;
const KIND_SHARD_MAP: u8 = 2;
const KIND_LOOKUP: u8 = 3;
const KIND_REPLY: u8 = 4;
const KIND_UPDATE: u8 = 5;
const KIND_UPDATE_ACK: u8 = 6;
const KIND_QUIESCE: u8 = 7;
const KIND_QUIESCE_ACK: u8 = 8;
const KIND_EPOCH_PING: u8 = 9;
const KIND_EPOCH_PONG: u8 = 10;
const KIND_STATUS: u8 = 11;
const KIND_STATS_REQUEST: u8 = 12;
const KIND_STATS_REPLY: u8 = 13;

/// Why a byte sequence is not a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the frame did.
    Truncated,
    /// Length prefix exceeds [`MAX_FRAME_LEN`] (or is too short to hold
    /// the version and kind bytes).
    BadLength(u32),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Unknown enum tag inside a body.
    BadTag(u8),
    /// The body decoded but left unconsumed bytes behind.
    Trailing(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadLength(n) => write!(f, "frame length {n} out of bounds"),
            WireError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after frame body"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Outcome of one key's lookup, as carried by [`Frame::Reply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupStatus {
    /// The key's rank within the answering server's key space.
    Rank(u32),
    /// Admission control shed the key (payload: the server-local shard
    /// whose queue was full).
    Shed(u32),
    /// The server is shutting down (or the key's last replica is gone).
    Shutdown,
}

/// One churn operation on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOp {
    /// Insert a key.
    Insert(u32),
    /// Delete a key.
    Delete(u32),
}

/// One replica's live numbers inside a [`StatsMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatsMsg {
    /// Server-local shard index.
    pub shard: u16,
    /// Replica index within the shard.
    pub replica: u16,
    /// Admission-queue depth at snapshot time (in-flight requests).
    pub depth: u64,
    /// Queries this replica has served so far.
    pub served: u64,
}

/// A span process's live accounting, as carried by [`Frame::StatsReply`]
/// — everything a `dini_top` poller (or a simtest oracle) needs to see
/// a remote server's health without touching its process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsMsg {
    /// Queries served in total.
    pub served: u64,
    /// Requests admitted into some replica queue.
    pub admitted: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Failover hand-offs to surviving siblings.
    pub rerouted: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Snapshot epochs published by the writer.
    pub snapshots: u64,
    /// Delta merges (index rebuilds) performed.
    pub merges: u64,
    /// Live keys the span holds.
    pub live_keys: u64,
    /// Latency p50, in nanoseconds (log-bin resolution).
    pub p50_ns: u64,
    /// Latency p99, in nanoseconds.
    pub p99_ns: u64,
    /// Latency p999, in nanoseconds.
    pub p999_ns: u64,
    /// Stage-trace records sampled so far (across all replicas).
    pub trace_records: u64,
    /// Sum of per-sample coalescing wait (admitted → collected), ns.
    pub stage_wait_ns: u64,
    /// Sum of per-sample index service (collected → answered), ns.
    pub stage_service_ns: u64,
    /// Sum of per-sample reply fill (answered → filled), ns.
    pub stage_fill_ns: u64,
    /// Highest churn-log epoch this span process has adopted.
    pub log_epoch: u64,
    /// Highest churn-log sequence contiguously applied (0 = none).
    pub log_seq: u64,
    /// Per-replica split, replica-major (shard-major outer order).
    pub replicas: Vec<ReplicaStatsMsg>,
    /// Key-range heat counters, shard-major:
    /// `heat[shard * HEAT_BUCKETS + bucket]` lookups landed in that
    /// top-key-bits bucket. Empty when heat telemetry is off.
    pub heat: Vec<u64>,
}

/// One span of the shard map: a contiguous slice of the key space and
/// the replica endpoints serving it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanMsg {
    /// Smallest key the span owns (span 0 must start at 0).
    pub lo_key: u32,
    /// Addresses of the servers replicating this span.
    pub endpoints: Vec<String>,
}

/// One protocol frame. See the module docs for the layout and the
/// direction each frame travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client handshake: announces the protocol version it speaks.
    Hello {
        /// Highest protocol version the client understands.
        proto: u16,
    },
    /// Server handshake reply: the cluster topology plus this server's
    /// own span, live-key count, and churn-log watermark.
    ShardMap {
        /// Every span of the key space, in key order.
        spans: Vec<SpanMsg>,
        /// Which span the answering server hosts.
        my_span: u16,
        /// Live keys the answering server holds right now.
        live_keys: u64,
        /// Churn-log epoch the server's state already folds — non-zero
        /// after a snapshot restart, where the mapped state covers a
        /// log prefix. A fresh (empty-state) server reports `(0, 0)`.
        log_epoch: u64,
        /// Highest churn-log sequence the server's state already folds
        /// (0 = none): the client replays its log strictly after this.
        log_seq: u64,
    },
    /// A coalesced lookup batch.
    Lookup {
        /// Request id replies (and retries) are matched on.
        req: u64,
        /// Causal trace id stamped by the originating client; 0 when the
        /// request was not sampled. Retries reuse the original id, so
        /// one logical request is one timeline across failovers.
        trace: u64,
        /// The client-side span that emitted this frame (its slot in the
        /// client's wire trace ring), so a stitcher can parent the
        /// server's stage records under the exact client hop.
        parent: u32,
        /// The batch, in submission order.
        keys: Vec<u32>,
    },
    /// The answer to one [`Frame::Lookup`], positionally aligned.
    Reply {
        /// The request id being answered.
        req: u64,
        /// The lookup's trace id, echoed verbatim (0 = untraced).
        trace: u64,
        /// The lookup's parent span, echoed verbatim.
        parent: u32,
        /// One status per key, in the batch's order.
        results: Vec<LookupStatus>,
    },
    /// A suffix of the client's replicated churn log: `ops[i]` is log
    /// record `seq + i`. Replicas apply strictly in sequence order from
    /// a per-connection cursor; a frame opening past the cursor (a gap)
    /// is held off until the writer replays the missing prefix.
    Update {
        /// Request id for the ack; 0 = fire-and-forget (no ack).
        req: u64,
        /// The writer's election epoch (bumped per failover).
        epoch: u64,
        /// Log sequence number of `ops[0]`; sequences start at 1. An
        /// empty `ops` is a pure log-position probe.
        seq: u64,
        /// Causal trace id stamped by the appender (0 = unsampled);
        /// resends reuse the original id.
        trace: u64,
        /// The appender-side parent span for the stitcher.
        parent: u32,
        /// The log records, applied in order.
        ops: Vec<WireOp>,
    },
    /// Receipt for an acked [`Frame::Update`], reporting how far the
    /// replica's log has contiguously applied.
    UpdateAck {
        /// The request id being acknowledged.
        req: u64,
        /// The epoch the replica has adopted.
        epoch: u64,
        /// Highest log sequence applied with no gaps below it (0 = none).
        seq: u64,
    },
    /// Update-visibility barrier: block until every previously received
    /// update is applied and published.
    Quiesce {
        /// Request id for the ack.
        req: u64,
    },
    /// Barrier receipt, carrying fresh accounting.
    QuiesceAck {
        /// The request id being acknowledged.
        req: u64,
        /// Live keys after the barrier.
        live_keys: u64,
        /// Snapshot epochs published so far.
        snapshots: u64,
    },
    /// Snapshot-epoch / live-count probe (cheap; no barrier).
    EpochPing {
        /// Request id for the pong.
        req: u64,
    },
    /// Probe reply.
    EpochPong {
        /// The request id being answered.
        req: u64,
        /// Live keys as of the last snapshot publication.
        live_keys: u64,
        /// Snapshot epochs published so far.
        snapshots: u64,
    },
    /// Connection-level status notice.
    Status {
        /// What the peer should know.
        code: StatusCode,
    },
    /// Ask the span process for its live stats (cheap; no barrier).
    StatsRequest {
        /// Request id for the reply.
        req: u64,
    },
    /// The span process's live accounting.
    StatsReply {
        /// The request id being answered.
        req: u64,
        /// The numbers (boxed: this frame is rare and large).
        stats: Box<StatsMsg>,
    },
}

/// Connection-level status codes for [`Frame::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// The server is going away; the client should fail over.
    ShuttingDown,
}

// ---------------------------------------------------------------- encode

#[inline]
fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::ShardMap { .. } => KIND_SHARD_MAP,
            Frame::Lookup { .. } => KIND_LOOKUP,
            Frame::Reply { .. } => KIND_REPLY,
            Frame::Update { .. } => KIND_UPDATE,
            Frame::UpdateAck { .. } => KIND_UPDATE_ACK,
            Frame::Quiesce { .. } => KIND_QUIESCE,
            Frame::QuiesceAck { .. } => KIND_QUIESCE_ACK,
            Frame::EpochPing { .. } => KIND_EPOCH_PING,
            Frame::EpochPong { .. } => KIND_EPOCH_PONG,
            Frame::Status { .. } => KIND_STATUS,
            Frame::StatsRequest { .. } => KIND_STATS_REQUEST,
            Frame::StatsReply { .. } => KIND_STATS_REPLY,
        }
    }

    /// Append this frame — length prefix included — to `buf`. The buffer
    /// is the caller's to reuse across frames.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        put_u32(buf, 0); // length backpatched below
        buf.push(WIRE_VERSION);
        buf.push(self.kind());
        match self {
            Frame::Hello { proto } => put_u16(buf, *proto),
            Frame::ShardMap { spans, my_span, live_keys, log_epoch, log_seq } => {
                put_u16(buf, *my_span);
                put_u64(buf, *live_keys);
                put_u64(buf, *log_epoch);
                put_u64(buf, *log_seq);
                put_u16(buf, spans.len() as u16);
                for s in spans {
                    put_u32(buf, s.lo_key);
                    put_u16(buf, s.endpoints.len() as u16);
                    for e in &s.endpoints {
                        put_u16(buf, e.len() as u16);
                        buf.extend_from_slice(e.as_bytes());
                    }
                }
            }
            Frame::Lookup { req, trace, parent, keys } => {
                put_u64(buf, *req);
                put_u64(buf, *trace);
                put_u32(buf, *parent);
                put_u32(buf, keys.len() as u32);
                for &k in keys {
                    put_u32(buf, k);
                }
            }
            Frame::Reply { req, trace, parent, results } => {
                put_u64(buf, *req);
                put_u64(buf, *trace);
                put_u32(buf, *parent);
                put_u32(buf, results.len() as u32);
                for r in results {
                    match r {
                        LookupStatus::Rank(v) => {
                            buf.push(0);
                            put_u32(buf, *v);
                        }
                        LookupStatus::Shed(shard) => {
                            buf.push(1);
                            put_u32(buf, *shard);
                        }
                        LookupStatus::Shutdown => {
                            buf.push(2);
                            put_u32(buf, 0);
                        }
                    }
                }
            }
            Frame::Update { req, epoch, seq, trace, parent, ops } => {
                put_u64(buf, *req);
                put_u64(buf, *epoch);
                put_u64(buf, *seq);
                put_u64(buf, *trace);
                put_u32(buf, *parent);
                put_u32(buf, ops.len() as u32);
                for op in ops {
                    match op {
                        WireOp::Insert(k) => {
                            buf.push(0);
                            put_u32(buf, *k);
                        }
                        WireOp::Delete(k) => {
                            buf.push(1);
                            put_u32(buf, *k);
                        }
                    }
                }
            }
            Frame::UpdateAck { req, epoch, seq } => {
                put_u64(buf, *req);
                put_u64(buf, *epoch);
                put_u64(buf, *seq);
            }
            Frame::Quiesce { req } | Frame::EpochPing { req } => put_u64(buf, *req),
            Frame::QuiesceAck { req, live_keys, snapshots }
            | Frame::EpochPong { req, live_keys, snapshots } => {
                put_u64(buf, *req);
                put_u64(buf, *live_keys);
                put_u64(buf, *snapshots);
            }
            Frame::Status { code } => buf.push(match code {
                StatusCode::ShuttingDown => 0,
            }),
            Frame::StatsRequest { req } => put_u64(buf, *req),
            Frame::StatsReply { req, stats } => {
                put_u64(buf, *req);
                for v in [
                    stats.served,
                    stats.admitted,
                    stats.shed,
                    stats.rerouted,
                    stats.batches,
                    stats.snapshots,
                    stats.merges,
                    stats.live_keys,
                    stats.p50_ns,
                    stats.p99_ns,
                    stats.p999_ns,
                    stats.trace_records,
                    stats.stage_wait_ns,
                    stats.stage_service_ns,
                    stats.stage_fill_ns,
                    stats.log_epoch,
                    stats.log_seq,
                ] {
                    put_u64(buf, v);
                }
                put_u16(buf, stats.replicas.len() as u16);
                for r in &stats.replicas {
                    put_u16(buf, r.shard);
                    put_u16(buf, r.replica);
                    put_u64(buf, r.depth);
                    put_u64(buf, r.served);
                }
                put_u16(buf, stats.heat.len() as u16);
                for &h in &stats.heat {
                    put_u64(buf, h);
                }
            }
        }
        let len = (buf.len() - start - 4) as u32;
        debug_assert!(len <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
        buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Encode into a fresh buffer (tests and one-off frames; hot paths
    /// reuse a buffer via [`encode_into`](Self::encode_into)).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decode one frame **body** (the bytes after the 4-byte length
    /// prefix). Rejects — without panicking — truncation, trailing
    /// bytes, unknown versions/kinds/tags, and counts that overrun the
    /// input.
    pub fn decode(payload: &[u8]) -> Result<Frame, WireError> {
        let mut c = Cur { b: payload, off: 0 };
        let version = c.u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = c.u8()?;
        let frame = match kind {
            KIND_HELLO => Frame::Hello { proto: c.u16()? },
            KIND_SHARD_MAP => {
                let my_span = c.u16()?;
                let live_keys = c.u64()?;
                let log_epoch = c.u64()?;
                let log_seq = c.u64()?;
                let n_spans = c.u16()? as usize;
                let mut spans = Vec::with_capacity(n_spans.min(c.remaining()));
                for _ in 0..n_spans {
                    let lo_key = c.u32()?;
                    let n_eps = c.u16()? as usize;
                    let mut endpoints = Vec::with_capacity(n_eps.min(c.remaining()));
                    for _ in 0..n_eps {
                        let n = c.u16()? as usize;
                        let bytes = c.bytes(n)?;
                        let s = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
                        endpoints.push(s.to_owned());
                    }
                    spans.push(SpanMsg { lo_key, endpoints });
                }
                Frame::ShardMap { spans, my_span, live_keys, log_epoch, log_seq }
            }
            KIND_LOOKUP => {
                let req = c.u64()?;
                let trace = c.u64()?;
                let parent = c.u32()?;
                let n = c.u32()? as usize;
                if n.checked_mul(4).is_none_or(|bytes| bytes > c.remaining()) {
                    return Err(WireError::Truncated);
                }
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(c.u32()?);
                }
                Frame::Lookup { req, trace, parent, keys }
            }
            KIND_REPLY => {
                let req = c.u64()?;
                let trace = c.u64()?;
                let parent = c.u32()?;
                let n = c.u32()? as usize;
                if n.checked_mul(5).is_none_or(|bytes| bytes > c.remaining()) {
                    return Err(WireError::Truncated);
                }
                let mut results = Vec::with_capacity(n);
                for _ in 0..n {
                    let tag = c.u8()?;
                    let val = c.u32()?;
                    results.push(match tag {
                        0 => LookupStatus::Rank(val),
                        1 => LookupStatus::Shed(val),
                        2 => LookupStatus::Shutdown,
                        t => return Err(WireError::BadTag(t)),
                    });
                }
                Frame::Reply { req, trace, parent, results }
            }
            KIND_UPDATE => {
                let req = c.u64()?;
                let epoch = c.u64()?;
                let seq = c.u64()?;
                let trace = c.u64()?;
                let parent = c.u32()?;
                let n = c.u32()? as usize;
                if n.checked_mul(5).is_none_or(|bytes| bytes > c.remaining()) {
                    return Err(WireError::Truncated);
                }
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    let tag = c.u8()?;
                    let key = c.u32()?;
                    ops.push(match tag {
                        0 => WireOp::Insert(key),
                        1 => WireOp::Delete(key),
                        t => return Err(WireError::BadTag(t)),
                    });
                }
                Frame::Update { req, epoch, seq, trace, parent, ops }
            }
            KIND_UPDATE_ACK => Frame::UpdateAck { req: c.u64()?, epoch: c.u64()?, seq: c.u64()? },
            KIND_QUIESCE => Frame::Quiesce { req: c.u64()? },
            KIND_QUIESCE_ACK => {
                Frame::QuiesceAck { req: c.u64()?, live_keys: c.u64()?, snapshots: c.u64()? }
            }
            KIND_EPOCH_PING => Frame::EpochPing { req: c.u64()? },
            KIND_EPOCH_PONG => {
                Frame::EpochPong { req: c.u64()?, live_keys: c.u64()?, snapshots: c.u64()? }
            }
            KIND_STATUS => Frame::Status {
                code: match c.u8()? {
                    0 => StatusCode::ShuttingDown,
                    t => return Err(WireError::BadTag(t)),
                },
            },
            KIND_STATS_REQUEST => Frame::StatsRequest { req: c.u64()? },
            KIND_STATS_REPLY => {
                let req = c.u64()?;
                let mut scalars = [0u64; 17];
                for s in &mut scalars {
                    *s = c.u64()?;
                }
                let n = c.u16()? as usize;
                // Each replica entry is 2 + 2 + 8 + 8 = 20 bytes.
                if n.checked_mul(20).is_none_or(|bytes| bytes > c.remaining()) {
                    return Err(WireError::Truncated);
                }
                let mut replicas = Vec::with_capacity(n);
                for _ in 0..n {
                    replicas.push(ReplicaStatsMsg {
                        shard: c.u16()?,
                        replica: c.u16()?,
                        depth: c.u64()?,
                        served: c.u64()?,
                    });
                }
                let n_heat = c.u16()? as usize;
                if n_heat.checked_mul(8).is_none_or(|bytes| bytes > c.remaining()) {
                    return Err(WireError::Truncated);
                }
                let mut heat = Vec::with_capacity(n_heat);
                for _ in 0..n_heat {
                    heat.push(c.u64()?);
                }
                let [served, admitted, shed, rerouted, batches, snapshots, merges, live_keys, p50_ns, p99_ns, p999_ns, trace_records, stage_wait_ns, stage_service_ns, stage_fill_ns, log_epoch, log_seq] =
                    scalars;
                Frame::StatsReply {
                    req,
                    stats: Box::new(StatsMsg {
                        served,
                        admitted,
                        shed,
                        rerouted,
                        batches,
                        snapshots,
                        merges,
                        live_keys,
                        p50_ns,
                        p99_ns,
                        p999_ns,
                        trace_records,
                        stage_wait_ns,
                        stage_service_ns,
                        stage_fill_ns,
                        log_epoch,
                        log_seq,
                        replicas,
                        heat,
                    }),
                }
            }
            k => return Err(WireError::BadKind(k)),
        };
        if c.remaining() != 0 {
            return Err(WireError::Trailing(c.remaining()));
        }
        Ok(frame)
    }
}

/// Validate a frame's 4-byte length prefix, returning the body length.
pub fn frame_len(prefix: [u8; 4]) -> Result<usize, WireError> {
    let len = u32::from_le_bytes(prefix);
    if !(2..=MAX_FRAME_LEN).contains(&len) {
        return Err(WireError::BadLength(len));
    }
    Ok(len as usize)
}

/// Bounds-checked little-endian cursor.
struct Cur<'a> {
    b: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.off
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.b[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let bytes = frame.encode();
        let len = frame_len(bytes[..4].try_into().unwrap()).expect("valid prefix");
        assert_eq!(len, bytes.len() - 4);
        assert_eq!(Frame::decode(&bytes[4..]).expect("decodes"), frame);
    }

    #[test]
    fn every_frame_kind_round_trips() {
        round_trip(Frame::Hello { proto: 1 });
        round_trip(Frame::ShardMap {
            spans: vec![
                SpanMsg { lo_key: 0, endpoints: vec!["a:1".into(), "b:2".into()] },
                SpanMsg { lo_key: 5000, endpoints: vec!["c:3".into()] },
            ],
            my_span: 1,
            live_keys: 123_456,
            log_epoch: 5,
            log_seq: 9_001,
        });
        round_trip(Frame::Lookup {
            req: 7,
            trace: u64::MAX,
            parent: 3,
            keys: vec![1, 2, u32::MAX],
        });
        round_trip(Frame::Lookup { req: 7, trace: 0, parent: 0, keys: vec![] });
        round_trip(Frame::Reply {
            req: 7,
            trace: 0xDEAD_BEEF,
            parent: u32::MAX,
            results: vec![LookupStatus::Rank(9), LookupStatus::Shed(3), LookupStatus::Shutdown],
        });
        round_trip(Frame::Update {
            req: 0,
            epoch: 1,
            seq: 42,
            trace: 11,
            parent: 2,
            ops: vec![WireOp::Insert(4), WireOp::Delete(9)],
        });
        round_trip(Frame::Update { req: 3, epoch: 2, seq: 7, trace: 0, parent: 0, ops: vec![] });
        round_trip(Frame::UpdateAck { req: 8, epoch: 2, seq: u64::MAX });
        round_trip(Frame::Quiesce { req: 9 });
        round_trip(Frame::QuiesceAck { req: 9, live_keys: 10, snapshots: 11 });
        round_trip(Frame::EpochPing { req: 12 });
        round_trip(Frame::EpochPong { req: 12, live_keys: 13, snapshots: 14 });
        round_trip(Frame::Status { code: StatusCode::ShuttingDown });
        round_trip(Frame::StatsRequest { req: 15 });
        round_trip(Frame::StatsReply {
            req: 15,
            stats: Box::new(StatsMsg {
                served: 1,
                admitted: 2,
                shed: 3,
                rerouted: 4,
                batches: 5,
                snapshots: 6,
                merges: 7,
                live_keys: 8,
                p50_ns: 9,
                p99_ns: 10,
                p999_ns: 11,
                trace_records: 12,
                stage_wait_ns: 13,
                stage_service_ns: 14,
                stage_fill_ns: 15,
                log_epoch: 16,
                log_seq: 17,
                replicas: vec![
                    ReplicaStatsMsg { shard: 0, replica: 0, depth: 3, served: 100 },
                    ReplicaStatsMsg { shard: 1, replica: 1, depth: 0, served: u64::MAX },
                ],
                heat: vec![0, 7, u64::MAX, 3],
            }),
        });
        round_trip(Frame::StatsReply { req: 0, stats: Box::default() });
    }

    #[test]
    fn stats_reply_replica_count_cannot_drive_allocation() {
        // A StatsReply claiming u16::MAX replicas with an empty tail:
        // the 20-byte-per-entry guard must reject before with_capacity.
        let mut bytes = vec![WIRE_VERSION, KIND_STATS_REPLY];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        for _ in 0..17 {
            bytes.extend_from_slice(&0u64.to_le_bytes());
        }
        bytes.extend_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn stats_reply_heat_count_cannot_drive_allocation() {
        // Zero replicas, then a heat count of u16::MAX with nothing
        // behind it: the 8-byte-per-entry guard must reject first.
        let mut bytes = vec![WIRE_VERSION, KIND_STATS_REPLY];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        for _ in 0..17 {
            bytes.extend_from_slice(&0u64.to_le_bytes());
        }
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = Frame::Lookup { req: 1, trace: 5, parent: 1, keys: vec![1, 2, 3, 4] }.encode();
        for cut in 4..bytes.len() {
            assert!(Frame::decode(&bytes[4..cut]).is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn oversized_count_cannot_drive_allocation() {
        // A Lookup claiming u32::MAX keys with a 4-byte body: the count
        // guard must reject it before any Vec::with_capacity.
        let mut bytes = vec![WIRE_VERSION, KIND_LOOKUP];
        bytes.extend_from_slice(&77u64.to_le_bytes()); // req
        bytes.extend_from_slice(&0u64.to_le_bytes()); // trace
        bytes.extend_from_slice(&0u32.to_le_bytes()); // parent
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        assert_eq!(Frame::decode(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn wrong_version_and_kind_rejected() {
        let mut bytes = Frame::Hello { proto: 1 }.encode();
        bytes[4] = 99;
        assert_eq!(Frame::decode(&bytes[4..]), Err(WireError::BadVersion(99)));
        let mut bytes = Frame::Hello { proto: 1 }.encode();
        bytes[5] = 200;
        assert_eq!(Frame::decode(&bytes[4..]), Err(WireError::BadKind(200)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Frame::EpochPing { req: 3 }.encode();
        bytes.push(0xFF);
        assert_eq!(Frame::decode(&bytes[4..]), Err(WireError::Trailing(1)));
    }

    #[test]
    fn length_prefix_bounds() {
        assert!(frame_len(1u32.to_le_bytes()).is_err(), "too short for version+kind");
        assert!(frame_len((MAX_FRAME_LEN + 1).to_le_bytes()).is_err());
        assert_eq!(frame_len(2u32.to_le_bytes()), Ok(2));
    }
}
