//! `NetServer`: an [`IndexServer`] hosted behind a transport listener.
//!
//! One `NetServer` owns one span of the key space (its whole replica
//! group of shards, dispatchers, and writer — everything PR 1–4 built)
//! and serves it to remote callers:
//!
//! ```text
//!   acceptor thread ──► per-connection reader ──begin_lookup()──► IndexServer
//!                                   │                                   │
//!                                   └─jobs─► per-connection responder ◄─┘
//!                                                (reply mux: waits the
//!                                                 pending lookups, writes
//!                                                 one Reply frame per batch)
//! ```
//!
//! * The **reader** decodes frames and turns a `Lookup` batch into
//!   per-key [`begin_lookup`](dini_serve::ServerHandle::begin_lookup)
//!   submissions — non-blocking, so server-side admission control sheds
//!   exactly as it does for local callers, and the coalescing batcher
//!   sees remote keys as ordinary traffic (a remote batch and local
//!   callers coalesce together).
//! * The **responder** is the writer-side reply mux: it redeems each
//!   batch's pooled reply slots (generation-tagged cells from the
//!   server's `SlotPool`s) and ships one positionally-aligned `Reply`
//!   frame, so a slow consumer never blocks the dispatch path — only
//!   its own connection.
//! * Updates feed the span's single writer; `Quiesce` runs the writer
//!   barrier and returns the fresh live-key count (the client uses it
//!   to recompose cross-span base ranks).
//!
//! Every thread is spawned on the hosted server's [`Clock`], so under
//! `dini-simtest` the acceptor, readers, and responders all wait in
//! virtual time inside the deterministic scheduler.

use crate::topology::Topology;
use crate::transport::{Acceptor, Duplex, NetError};
use crate::wire::{
    Frame, LookupStatus, ReplicaStatsMsg, StatsMsg, StatusCode, WireOp, WIRE_VERSION,
};
use crossbeam::channel::unbounded;
use dini_serve::{
    open_snapshot, Clock, ClockJoinHandle, IndexServer, PendingLookup, ServeConfig, ServeError,
    SnapError,
};
use dini_workload::Op;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often the acceptor and connection readers wake to check the
/// shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
const READ_POLL: Duration = Duration::from_millis(10);

/// Configuration of one hosted span.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// The hosted [`IndexServer`]'s own knobs (shards, replicas,
    /// coalescing, clock, faults — everything).
    pub serve: ServeConfig,
    /// The whole cluster's span layout, served to clients in the
    /// handshake.
    pub topology: Topology,
    /// Which span of `topology` this server hosts.
    pub span: usize,
}

impl NetServerConfig {
    /// Host `span` of `topology` with `serve` knobs.
    pub fn new(serve: ServeConfig, topology: Topology, span: usize) -> Self {
        Self { serve, topology, span }
    }
}

/// A span process's churn-log high-water mark: the highest epoch any
/// connection has adopted and the highest sequence contiguously applied,
/// aggregated across connections. Purely introspective — the apply
/// order itself is carried by each connection's private cursor and the
/// writer channel.
#[derive(Debug, Default)]
pub struct LogPosition {
    // ordering: relaxed-ok: advisory introspection gauges folded with
    // fetch_max; no data is published through them.
    epoch: AtomicU64,
    seq: AtomicU64,
}

impl LogPosition {
    fn advance(&self, epoch: u64, seq: u64) {
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
        self.seq.fetch_max(seq, Ordering::Relaxed);
    }

    /// The `(epoch, seq)` high-water mark.
    pub fn get(&self) -> (u64, u64) {
        (self.epoch.load(Ordering::Relaxed), self.seq.load(Ordering::Relaxed))
    }
}

/// What the reader hands the responder, in connection order.
enum Job {
    /// Answer the handshake.
    Map,
    /// Redeem a lookup batch and ship its reply, echoing the frame's
    /// causal trace context so the client can stitch.
    Reply { req: u64, trace: u64, parent: u32, pendings: Vec<Result<PendingLookup, ServeError>> },
    /// Acknowledge an acked update, reporting the connection's applied
    /// log position.
    Ack { req: u64, epoch: u64, seq: u64 },
    /// Acknowledge a quiesce barrier.
    QuiesceAck { req: u64 },
    /// Answer an epoch ping.
    Pong { req: u64 },
    /// Assemble and ship the span's live stats.
    Stats { req: u64 },
    /// Tell the peer we are going away, then hang up.
    Bye,
}

/// Assemble a [`StatsMsg`] from the hosted server's live accounting:
/// the merged [`ServeStats`](dini_serve::ServeStats) snapshot,
/// replica-major depths zipped with per-replica served counts, and the
/// sampled stage-trace sums.
fn assemble_stats(server: &IndexServer, log: &LogPosition) -> StatsMsg {
    let s = server.stats();
    let replicas: Vec<ReplicaStatsMsg> = server
        .replica_stats()
        .iter()
        .zip(server.replica_depths())
        .enumerate()
        .map(|(i, (rs, depth))| {
            let per_shard = server.replicas_per_shard();
            ReplicaStatsMsg {
                shard: (i / per_shard) as u16,
                replica: (i % per_shard) as u16,
                depth,
                served: rs.served,
            }
        })
        .collect();
    let traces = server.stage_traces();
    let (mut wait, mut service, mut fill) = (0u64, 0u64, 0u64);
    for t in &traces {
        wait += t.wait_ns();
        service += t.service_ns();
        fill += t.fill_ns();
    }
    StatsMsg {
        served: s.served,
        admitted: s.admitted,
        shed: s.shed,
        rerouted: s.rerouted,
        batches: s.batches,
        snapshots: s.snapshots_published,
        merges: s.merges,
        live_keys: server.len() as u64,
        p50_ns: s.latency_quantile_ns(0.50) as u64,
        p99_ns: s.latency_quantile_ns(0.99) as u64,
        p999_ns: s.latency_quantile_ns(0.999) as u64,
        trace_records: traces.len() as u64,
        stage_wait_ns: wait,
        stage_service_ns: service,
        stage_fill_ns: fill,
        log_epoch: log.get().0,
        log_seq: log.get().1,
        replicas,
        heat: server.heat_snapshot(),
    }
}

/// An [`IndexServer`] (one span's shards + replicas + writer) hosted
/// behind a transport [`Acceptor`]. Dropping (or
/// [`shutdown`](Self::shutdown)-ing) the `NetServer` notifies connected
/// clients, joins every connection thread, then winds the index server
/// down.
pub struct NetServer {
    server: Arc<IndexServer>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<ClockJoinHandle<()>>,
    conns: Arc<Mutex<Vec<ClockJoinHandle<()>>>>,
    addr: String,
    log: Arc<LogPosition>,
}

impl NetServer {
    /// Build an [`IndexServer`] over `keys` (this span's slice of the
    /// global key set) and serve it through `acceptor`.
    pub fn start(acceptor: Box<dyn Acceptor>, keys: &[u32], cfg: NetServerConfig) -> Self {
        let server = IndexServer::build(keys, cfg.serve.clone());
        Self::host(acceptor, server, (0, 0), cfg)
    }

    /// Restart this span from the `dini-store` snapshot at
    /// `cfg.serve.store`'s path (which must be set): the shard mains are
    /// memory-mapped — no sort, no copy — pending deltas and routing
    /// resume exactly, and every connection's churn-log cursor starts at
    /// the snapshot's `(epoch, seq)` watermark, so a rejoining client
    /// replays only the log suffix the snapshot missed.
    ///
    /// Any [`SnapError`] (no snapshot yet, torn write, flipped bit — the
    /// codec rejects them all by name) falls back to a cold sort-rebuild
    /// over `fallback_keys`, returning the error alongside the running
    /// server so callers can count or log the degraded start.
    pub fn restart(
        acceptor: Box<dyn Acceptor>,
        fallback_keys: &[u32],
        cfg: NetServerConfig,
    ) -> (Self, Option<SnapError>) {
        let plan = cfg.serve.store.as_ref().expect("restart requires ServeConfig::store");
        match open_snapshot(&plan.path) {
            Ok(snap) => {
                let server = IndexServer::build_recovered(&snap, cfg.serve.clone());
                let watermark = (snap.log_epoch, snap.log_seq);
                (Self::host(acceptor, server, watermark, cfg), None)
            }
            Err(e) => (Self::start(acceptor, fallback_keys, cfg), Some(e)),
        }
    }

    fn host(
        acceptor: Box<dyn Acceptor>,
        server: IndexServer,
        init_log: (u64, u64),
        cfg: NetServerConfig,
    ) -> Self {
        cfg.topology.validate();
        assert!(cfg.span < cfg.topology.n_spans(), "hosted span out of range");
        let clock = cfg.serve.clock.clone();
        let server = Arc::new(server);
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<ClockJoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let addr = acceptor.addr();
        let log = Arc::new(LogPosition::default());
        // A recovered span's high-water mark starts at the snapshot
        // watermark, not zero — everything below it is already folded in.
        log.advance(init_log.0, init_log.1);

        let acceptor_thread = {
            let server = server.clone();
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            let topology = Arc::new(cfg.topology.clone());
            let span = cfg.span;
            let clock2 = clock.clone();
            let log = log.clone();
            clock.spawn("dini-net-acceptor", move || {
                let mut conn_id = 0u64;
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match acceptor.accept_timeout(ACCEPT_POLL) {
                        Ok(duplex) => {
                            conn_id += 1;
                            let (reader, responder) = spawn_connection(
                                &clock2,
                                conn_id,
                                duplex,
                                ConnShared {
                                    server: server.clone(),
                                    topology: topology.clone(),
                                    span,
                                    shutdown: shutdown.clone(),
                                    log: log.clone(),
                                    init_log,
                                },
                            );
                            let mut guard = conns.lock().expect("conn list lock");
                            // Prune exited connections so a long-lived
                            // server tracks live ones, not every
                            // connection ever accepted. (Dropping a
                            // finished thread's handle just detaches it.)
                            guard.retain(|h| !h.is_finished());
                            guard.push(reader);
                            guard.push(responder);
                        }
                        Err(NetError::Timeout) => continue,
                        Err(NetError::Closed) => break, // listener gone
                        Err(_) => {
                            // Transient accept failure (e.g. the peer
                            // reset before accept completed, momentary
                            // fd exhaustion): the listener itself is
                            // fine — pace the retry, keep accepting.
                            clock2.sleep(ACCEPT_POLL);
                        }
                    }
                }
            })
        };

        Self { server, shutdown, acceptor: Some(acceptor_thread), conns, addr, log }
    }

    /// The span's churn-log high-water mark `(epoch, seq)` across
    /// connections — what election and the simtest convergence oracles
    /// compare between replicas.
    pub fn log_position(&self) -> (u64, u64) {
        self.log.get()
    }

    /// The address clients dial to reach this server.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The hosted index server (stats, quiesce, local handles, …).
    pub fn server(&self) -> &IndexServer {
        &self.server
    }

    /// Notify clients, join every transport thread, and wind down the
    /// hosted server.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // ordering: SeqCst — matches the loads in the acceptor and
        // per-connection reader loops; cold teardown path.
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().expect("conn list lock"));
        for c in conns {
            let _ = c.join();
        }
        // `self.server` (the last strong count) drops with `self`,
        // joining dispatchers and the writer.
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Everything an accepted connection shares with its host server,
/// assembled fresh per accept.
struct ConnShared {
    server: Arc<IndexServer>,
    topology: Arc<Topology>,
    span: usize,
    shutdown: Arc<AtomicBool>,
    log: Arc<LogPosition>,
    /// The snapshot watermark this server recovered from (`(0, 0)` on a
    /// cold start): every connection's churn-log cursor starts here, and
    /// the handshake reports it so a rejoining client replays exactly
    /// the log suffix the snapshot missed. Per-connection state must use
    /// this, never the live [`LogPosition`] — reporting another
    /// connection's progress would open a gap this reader then holds off
    /// forever.
    init_log: (u64, u64),
}

/// Spawn the reader + responder pair for one accepted connection.
fn spawn_connection(
    clock: &Clock,
    conn_id: u64,
    duplex: Duplex,
    shared: ConnShared,
) -> (ClockJoinHandle<()>, ClockJoinHandle<()>) {
    let ConnShared { server, topology, span, shutdown, log, init_log } = shared;
    let Duplex { tx: mut frame_tx, rx: mut frame_rx, peer: _ } = duplex;
    let (job_tx, job_rx) = unbounded::<Job>();

    let reader = {
        let server = server.clone();
        let log = log.clone();
        clock.spawn(&format!("dini-net-read-{conn_id}"), move || {
            let handle = server.handle();
            // The connection's churn-log cursor: the highest sequence
            // applied with no gaps below it, and the epoch adopted from
            // the writer. One writer per connection keeps the cursor
            // race-free. On a snapshot restart the cursor opens at the
            // recovered watermark — those records are already folded in.
            let mut applied = init_log.1;
            let mut adopted_epoch = init_log.0;
            loop {
                if shutdown.load(Ordering::SeqCst) {
                    let _ = job_tx.send(Job::Bye);
                    break;
                }
                let frame = match frame_rx.recv_timeout(READ_POLL) {
                    Ok(f) => f,
                    Err(NetError::Timeout) => continue,
                    Err(_) => break, // peer gone (or stream corrupt): hang up
                };
                match frame {
                    Frame::Hello { proto: _ } => {
                        // One version so far; a future v2 negotiates here.
                        let _ = job_tx.send(Job::Map);
                    }
                    Frame::Lookup { req, trace, parent, keys } => {
                        // Non-blocking submits: remote traffic sheds under
                        // the same admission control as local callers. The
                        // frame's trace id rides into each Request, so the
                        // dispatcher's stage records for this batch carry
                        // the same id as the client's wire record.
                        let pendings: Vec<Result<PendingLookup, ServeError>> =
                            keys.iter().map(|&k| handle.begin_lookup_traced(k, trace)).collect();
                        let _ = job_tx.send(Job::Reply { req, trace, parent, pendings });
                    }
                    Frame::Update { req, epoch, seq, trace: _, parent: _, ops } => {
                        // Strict in-order apply from the cursor: a
                        // duplicate or overlapping suffix is trimmed, a
                        // frame opening past `applied + 1` (a gap) is
                        // held off entirely — the writer learns the
                        // position from the ack and replays. Every log
                        // record is applied exactly once, in order.
                        adopted_epoch = adopted_epoch.max(epoch);
                        let n = ops.len() as u64;
                        if seq <= applied + 1 {
                            let skip = (applied + 1 - seq) as usize;
                            if skip < ops.len() {
                                let batch: Vec<Op> = ops[skip..]
                                    .iter()
                                    .map(|&op| match op {
                                        WireOp::Insert(k) => Op::Insert(k),
                                        WireOp::Delete(k) => Op::Delete(k),
                                    })
                                    .collect();
                                // `update_batch_at` stamps the writer's
                                // checkpoint watermark: the next snapshot
                                // records that everything through
                                // `seq + n - 1` is folded in.
                                if server
                                    .update_batch_at(batch, adopted_epoch, seq + n - 1)
                                    .is_err()
                                {
                                    let _ = job_tx.send(Job::Bye);
                                    break;
                                }
                                applied = seq + n - 1;
                                log.advance(adopted_epoch, applied);
                            }
                        }
                        if req != 0 {
                            let _ =
                                job_tx.send(Job::Ack { req, epoch: adopted_epoch, seq: applied });
                        }
                    }
                    Frame::Quiesce { req } => {
                        // The barrier blocks this connection's frame
                        // stream — that is its point: every update this
                        // reader already applied is published when the
                        // ack goes out.
                        server.quiesce();
                        let _ = job_tx.send(Job::QuiesceAck { req });
                    }
                    Frame::EpochPing { req } => {
                        let _ = job_tx.send(Job::Pong { req });
                    }
                    Frame::StatsRequest { req } => {
                        let _ = job_tx.send(Job::Stats { req });
                    }
                    // Client-bound frames arriving here are protocol
                    // noise (e.g. a fuzzer); ignore rather than kill the
                    // connection.
                    Frame::ShardMap { .. }
                    | Frame::Reply { .. }
                    | Frame::UpdateAck { .. }
                    | Frame::QuiesceAck { .. }
                    | Frame::EpochPong { .. }
                    | Frame::StatsReply { .. }
                    | Frame::Status { .. } => {}
                }
            }
            // job_tx drops here; the responder drains and exits.
        })
    };

    let responder = {
        let clock2 = clock.clone();
        clock.spawn(&format!("dini-net-send-{conn_id}"), move || {
            while let Ok(job) = clock2.recv(&job_rx) {
                let frame = match job {
                    Job::Map => Frame::ShardMap {
                        spans: topology.to_wire(),
                        my_span: span as u16,
                        live_keys: server.len() as u64,
                        log_epoch: init_log.0,
                        log_seq: init_log.1,
                    },
                    Job::Reply { req, trace, parent, pendings } => {
                        let results: Vec<LookupStatus> = pendings
                            .into_iter()
                            .map(|p| {
                                let outcome = match p {
                                    Ok(pending) => pending.wait(),
                                    Err(e) => Err(e),
                                };
                                match outcome {
                                    Ok(rank) => LookupStatus::Rank(rank),
                                    Err(ServeError::Overloaded { shard }) => {
                                        LookupStatus::Shed(shard as u32)
                                    }
                                    Err(ServeError::ShuttingDown) => LookupStatus::Shutdown,
                                }
                            })
                            .collect();
                        Frame::Reply { req, trace, parent, results }
                    }
                    Job::Ack { req, epoch, seq } => Frame::UpdateAck { req, epoch, seq },
                    Job::QuiesceAck { req } => Frame::QuiesceAck {
                        req,
                        live_keys: server.len() as u64,
                        snapshots: server.stats().snapshots_published,
                    },
                    Job::Pong { req } => Frame::EpochPong {
                        req,
                        live_keys: server.len() as u64,
                        snapshots: server.stats().snapshots_published,
                    },
                    Job::Stats { req } => {
                        Frame::StatsReply { req, stats: Box::new(assemble_stats(&server, &log)) }
                    }
                    Job::Bye => {
                        let _ = frame_tx.send(&Frame::Status { code: StatusCode::ShuttingDown });
                        break;
                    }
                };
                if frame_tx.send(&frame).is_err() {
                    break;
                }
            }
        })
    };

    (reader, responder)
}

/// The protocol version this build speaks (re-exported for handshakes).
pub const PROTO: u16 = WIRE_VERSION as u16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChanNet;

    const SEC: Duration = Duration::from_secs(1);

    fn cfg(addr: &str) -> NetServerConfig {
        let mut serve = ServeConfig::new(2);
        serve.slaves_per_shard = 1;
        serve.max_delay = Duration::from_micros(100);
        NetServerConfig::new(serve, Topology::single(vec![addr.to_owned()]), 0)
    }

    #[test]
    fn handshake_lookup_and_ping_over_chan_net() {
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("srv");
        let keys: Vec<u32> = (0..10_000).map(|i| i * 2).collect();
        let server = NetServer::start(Box::new(acc), &keys, cfg("srv"));
        assert_eq!(server.addr(), "srv");

        let mut c = net.dialer().dial("srv").unwrap();
        c.tx.send(&Frame::Hello { proto: PROTO }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::ShardMap { spans, my_span, live_keys, log_epoch, log_seq } => {
                assert_eq!(spans.len(), 1);
                assert_eq!(my_span, 0);
                assert_eq!(live_keys, 10_000);
                assert_eq!((log_epoch, log_seq), (0, 0), "cold start has no watermark");
            }
            other => panic!("expected ShardMap, got {other:?}"),
        }

        let queries = vec![0u32, 5, 19_998, u32::MAX];
        c.tx.send(&Frame::Lookup { req: 9, trace: 0, parent: 0, keys: queries.clone() }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::Reply { req, results, .. } => {
                assert_eq!(req, 9);
                let expect: Vec<LookupStatus> = queries
                    .iter()
                    .map(|&q| LookupStatus::Rank(keys.partition_point(|&k| k <= q) as u32))
                    .collect();
                assert_eq!(results, expect);
            }
            other => panic!("expected Reply, got {other:?}"),
        }

        c.tx.send(&Frame::EpochPing { req: 11 }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::EpochPong { req, live_keys, .. } => {
                assert_eq!((req, live_keys), (11, 10_000));
            }
            other => panic!("expected EpochPong, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn stats_request_reports_live_accounting() {
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("srv");
        let keys: Vec<u32> = (0..10_000).map(|i| i * 2).collect();
        let server = NetServer::start(Box::new(acc), &keys, cfg("srv"));

        let mut c = net.dialer().dial("srv").unwrap();
        c.tx.send(&Frame::Lookup { req: 1, trace: 0, parent: 0, keys: vec![0, 100, 9_999] })
            .unwrap();
        let _ = c.rx.recv_timeout(SEC).unwrap();
        c.tx.send(&Frame::StatsRequest { req: 2 }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::StatsReply { req, stats } => {
                assert_eq!(req, 2);
                assert_eq!(stats.served, 3);
                assert_eq!(stats.live_keys, 10_000);
                assert_eq!(stats.replicas.len(), 2, "2 shards × 1 replica");
                let split: u64 = stats.replicas.iter().map(|r| r.served).sum();
                assert_eq!(split, 3, "per-replica split must sum to the total");
                // The dispatcher releases depth *after* replies go out,
                // so a poll racing the reply may still see the batch.
                assert!(stats.replicas.iter().all(|r| r.depth <= 3), "depth bounded by issued");
                // Default sampling (period 64) may or may not have hit
                // these 3 requests, but can never exceed them.
                assert!(stats.trace_records <= stats.served);
            }
            other => panic!("expected StatsReply, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn updates_quiesce_and_shift_ranks() {
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("srv");
        let keys: Vec<u32> = (0..1_000).map(|i| i * 4).collect();
        let server = NetServer::start(Box::new(acc), &keys, cfg("srv"));

        let mut c = net.dialer().dial("srv").unwrap();
        c.tx.send(&Frame::Update {
            req: 0,
            epoch: 1,
            seq: 1,
            trace: 0,
            parent: 0,
            ops: vec![WireOp::Insert(1), WireOp::Delete(0)],
        })
        .unwrap();
        c.tx.send(&Frame::Quiesce { req: 3 }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::QuiesceAck { req, live_keys, .. } => {
                assert_eq!(req, 3);
                assert_eq!(live_keys, 1_000, "one insert, one delete");
            }
            other => panic!("expected QuiesceAck, got {other:?}"),
        }
        assert_eq!(server.log_position(), (1, 2), "two log records applied at epoch 1");
        c.tx.send(&Frame::Lookup { req: 4, trace: 0, parent: 0, keys: vec![1] }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::Reply { results, .. } => {
                assert_eq!(results, vec![LookupStatus::Rank(1)], "{{1}} ≤ 1 after churn");
            }
            other => panic!("expected Reply, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn restart_maps_snapshot_and_resumes_log_cursor_mid_stream() {
        use dini_serve::StorePlan;
        let dir = std::env::temp_dir().join(format!("dini-net-restart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("span0.snap");
        let _ = std::fs::remove_file(&snap_path);

        let keys: Vec<u32> = (0..2_000).map(|i| i * 4).collect();
        let mk_cfg = |addr: &str| {
            let mut c = cfg(addr);
            c.serve.store = Some(StorePlan::new(&snap_path));
            c
        };

        // First life: apply log records 1..=4, checkpoint at quiesce, die.
        {
            let net = ChanNet::new(Clock::system());
            let acc = net.listen("srv");
            let server = NetServer::start(Box::new(acc), &keys, mk_cfg("srv"));
            let mut c = net.dialer().dial("srv").unwrap();
            c.tx.send(&Frame::Update {
                req: 1,
                epoch: 1,
                seq: 1,
                trace: 0,
                parent: 0,
                ops: vec![
                    WireOp::Insert(1),
                    WireOp::Insert(3),
                    WireOp::Delete(0),
                    WireOp::Insert(5),
                ],
            })
            .unwrap();
            match c.rx.recv_timeout(SEC).unwrap() {
                Frame::UpdateAck { epoch, seq, .. } => assert_eq!((epoch, seq), (1, 4)),
                other => panic!("expected UpdateAck, got {other:?}"),
            }
            c.tx.send(&Frame::Quiesce { req: 2 }).unwrap();
            let _ = c.rx.recv_timeout(SEC).unwrap();
            server.shutdown();
        }

        // Second life: restart from the snapshot — no sort, cursor at
        // (1, 4) — and the handshake tells the client so.
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("srv");
        let (server, degraded) = NetServer::restart(Box::new(acc), &keys, mk_cfg("srv"));
        assert!(degraded.is_none(), "snapshot was intact: {degraded:?}");
        assert_eq!(server.log_position(), (1, 4));

        let mut c = net.dialer().dial("srv").unwrap();
        c.tx.send(&Frame::Hello { proto: PROTO }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::ShardMap { log_epoch, log_seq, live_keys, .. } => {
                assert_eq!((log_epoch, log_seq), (1, 4));
                assert_eq!(live_keys, 2_002, "2000 - {{0}} + {{1,3,5}}");
            }
            other => panic!("expected ShardMap, got {other:?}"),
        }

        // A replayed log suffix overlapping the watermark is trimmed:
        // records 3..=4 are already folded in, 5..=6 apply fresh.
        c.tx.send(&Frame::Update {
            req: 3,
            epoch: 1,
            seq: 3,
            trace: 0,
            parent: 0,
            ops: vec![
                WireOp::Delete(0), // seq 3: duplicate, trimmed
                WireOp::Insert(5), // seq 4: duplicate, trimmed
                WireOp::Insert(7), // seq 5: fresh
                WireOp::Delete(4), // seq 6: fresh
            ],
        })
        .unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::UpdateAck { epoch, seq, .. } => assert_eq!((epoch, seq), (1, 6)),
            other => panic!("expected UpdateAck, got {other:?}"),
        }
        c.tx.send(&Frame::Quiesce { req: 4 }).unwrap();
        let _ = c.rx.recv_timeout(SEC).unwrap();

        // Exact ranks over the recovered + replayed set.
        let mut mirror: std::collections::BTreeSet<u32> = keys.iter().copied().collect();
        for k in [1u32, 3, 5] {
            mirror.insert(k);
        }
        for k in [0u32, 4] {
            mirror.remove(&k);
        }
        mirror.insert(7);
        let probe = vec![0u32, 1, 3, 4, 5, 7, 8, 4_000, u32::MAX];
        c.tx.send(&Frame::Lookup { req: 5, trace: 0, parent: 0, keys: probe.clone() }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::Reply { results, .. } => {
                let expect: Vec<LookupStatus> = probe
                    .iter()
                    .map(|&q| LookupStatus::Rank(mirror.range(..=q).count() as u32))
                    .collect();
                assert_eq!(results, expect);
            }
            other => panic!("expected Reply, got {other:?}"),
        }
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_without_snapshot_falls_back_to_sort_rebuild() {
        use dini_serve::StorePlan;
        let dir = std::env::temp_dir().join(format!("dini-net-nosnap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut c = cfg("srv");
        c.serve.store = Some(StorePlan::new(dir.join("never-written.snap")));
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("srv");
        let keys: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let (server, degraded) = NetServer::restart(Box::new(acc), &keys, c);
        assert!(degraded.is_some(), "missing snapshot must surface");
        assert_eq!(server.log_position(), (0, 0), "fallback is a cold start");
        assert_eq!(server.server().len(), 500);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_notifies_connected_clients() {
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("srv");
        let keys: Vec<u32> = (0..100).collect();
        let server = NetServer::start(Box::new(acc), &keys, cfg("srv"));
        let mut c = net.dialer().dial("srv").unwrap();
        c.tx.send(&Frame::Hello { proto: PROTO }).unwrap();
        let _map = c.rx.recv_timeout(SEC).unwrap();
        server.shutdown();
        // The Bye status races the socket close; either is a clean
        // "endpoint gone" signal for the client.
        match c.rx.recv_timeout(SEC) {
            Ok(Frame::Status { code: StatusCode::ShuttingDown }) | Err(NetError::Closed) => {}
            other => panic!("expected shutdown notice or close, got {other:?}"),
        }
    }

    #[test]
    fn hosts_one_span_of_a_two_span_topology() {
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("hi-span");
        let keys: Vec<u32> = (0..2_000).map(|i| i * 10).collect();
        let topo = Topology {
            spans: vec![
                crate::topology::Span { lo_key: 0, endpoints: vec!["lo-span".into()] },
                crate::topology::Span { lo_key: 10_000, endpoints: vec!["hi-span".into()] },
            ],
        };
        let hi_keys = topo.split(&keys)[1].to_vec();
        let mut serve = ServeConfig::new(2);
        serve.slaves_per_shard = 1;
        let server =
            NetServer::start(Box::new(acc), &hi_keys, NetServerConfig::new(serve, topo, 1));

        let mut c = net.dialer().dial("hi-span").unwrap();
        c.tx.send(&Frame::Hello { proto: PROTO }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::ShardMap { spans, my_span, live_keys, .. } => {
                assert_eq!(my_span, 1);
                assert_eq!(spans.len(), 2);
                assert_eq!(live_keys as usize, hi_keys.len());
                // The span delimiters round-trip into a working router.
                let router = Topology::from_wire(&spans).router();
                assert_eq!(router.route(9_999), 0);
                assert_eq!(router.route(10_000), 1);
            }
            other => panic!("expected ShardMap, got {other:?}"),
        }
        // Span-local ranks: the hi-span server counts only its own keys.
        c.tx.send(&Frame::Lookup { req: 1, trace: 0, parent: 0, keys: vec![u32::MAX] }).unwrap();
        match c.rx.recv_timeout(SEC).unwrap() {
            Frame::Reply { results, .. } => {
                assert_eq!(results, vec![LookupStatus::Rank(hi_keys.len() as u32)]);
            }
            other => panic!("expected Reply, got {other:?}"),
        }
        server.shutdown();
    }
}
