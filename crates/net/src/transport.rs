//! Transport backends: frame pipes over TCP or deterministic channels.
//!
//! The protocol layer ([`NetServer`](crate::NetServer) /
//! [`RemoteClient`](crate::RemoteClient)) speaks to the world through
//! four small traits — [`FrameTx`], [`FrameRx`], [`Acceptor`],
//! [`Dialer`] — so the same server and client code runs over:
//!
//! * **TCP** ([`TcpAcceptorT`] / [`TcpDialer`], `std::net` only): real
//!   sockets with `TCP_NODELAY`, length-prefix framing, and an
//!   incremental receive buffer that survives timeouts mid-frame
//!   without losing stream sync. TCP always runs on the system clock —
//!   real sockets cannot wait in virtual time.
//! * **Simulated channels** ([`ChanNet`]): in-process frame pipes that
//!   wait in [`Clock`] time and route every frame through
//!   [`dini_cluster::inject`]'s seeded fate machinery — per-link fixed
//!   latency, jitter (which reorders frames, as a real network would),
//!   drops, duplicates, and link severance at a virtual instant. Under
//!   a [`SimClock`](dini_serve::SimClock) the whole transport replays
//!   bit-for-bit, which is how `dini-simtest` crashes links inside its
//!   determinism digest. With the system clock and
//!   [`LinkPlan::reliable`] the same pipes double as the in-process
//!   loopback used by unit tests.

use crate::wire::{frame_len, Frame, WireError};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dini_cluster::{FrameFate, LinkPlan};
use dini_serve::clock::dur_ns;
use dini_serve::{Clock, Nanos};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a transport operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer (or the link) is gone.
    Closed,
    /// The operation's deadline passed.
    Timeout,
    /// The byte stream did not parse as a frame.
    Wire(WireError),
    /// An OS-level I/O error (message preserved; `std::io::Error` is
    /// neither `Clone` nor comparable).
    Io(String),
    /// Nothing is listening at the dialed address.
    Refused(String),
    /// The peer spoke the protocol wrong (unexpected frame, bad
    /// handshake).
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "operation timed out"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Refused(addr) => write!(f, "connection refused: {addr}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// The sending half of one connection.
pub trait FrameTx: Send {
    /// Ship one frame. `Err(Closed)` means the connection is dead and
    /// will never carry another frame.
    fn send(&mut self, frame: &Frame) -> Result<(), NetError>;
}

/// The receiving half of one connection.
pub trait FrameRx: Send {
    /// Wait up to `timeout` for the next frame. `Err(Timeout)` is
    /// retryable; `Err(Closed)` is final.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, NetError>;
}

/// One established bidirectional connection.
pub struct Duplex {
    /// Sending half.
    pub tx: Box<dyn FrameTx>,
    /// Receiving half.
    pub rx: Box<dyn FrameRx>,
    /// Human-readable peer label (for diagnostics).
    pub peer: String,
}

/// A listening endpoint producing [`Duplex`] connections.
pub trait Acceptor: Send {
    /// Wait up to `timeout` for the next inbound connection.
    fn accept_timeout(&self, timeout: Duration) -> Result<Duplex, NetError>;
    /// The address peers dial to reach this acceptor.
    fn addr(&self) -> String;
}

/// An outbound connector.
pub trait Dialer: Send + Sync {
    /// Establish a connection to `addr`.
    fn dial(&self, addr: &str) -> Result<Duplex, NetError>;
}

// ------------------------------------------------------------------ TCP

/// How often a TCP accept loop polls its (non-blocking) listener.
const TCP_ACCEPT_POLL: Duration = Duration::from_millis(2);

/// A TCP listener (named with a `T` suffix to keep the bare name free
/// for the trait).
pub struct TcpAcceptorT {
    listener: TcpListener,
    addr: String,
}

impl TcpAcceptorT {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::Io(e.to_string()))?;
        listener.set_nonblocking(true).map_err(|e| NetError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| NetError::Io(e.to_string()))?.to_string();
        Ok(Self { listener, addr })
    }
}

/// Bound on a blocking socket write: a peer that stops reading long
/// enough to fill the TCP send buffer *and* sit out this timeout is
/// treated as dead (the write errors, the connection is torn down and
/// failed over) instead of wedging the sender thread — and with it
/// `NetServer::shutdown` / `RemoteClient::drop` — forever.
const TCP_WRITE_TIMEOUT: Duration = Duration::from_secs(10);

fn tcp_duplex(stream: TcpStream, peer: String) -> Result<Duplex, NetError> {
    stream.set_nodelay(true).map_err(|e| NetError::Io(e.to_string()))?;
    stream.set_nonblocking(false).map_err(|e| NetError::Io(e.to_string()))?;
    stream.set_write_timeout(Some(TCP_WRITE_TIMEOUT)).map_err(|e| NetError::Io(e.to_string()))?;
    let rx_stream = stream.try_clone().map_err(|e| NetError::Io(e.to_string()))?;
    Ok(Duplex {
        tx: Box::new(TcpTx { stream, buf: Vec::with_capacity(4096) }),
        rx: Box::new(TcpRx { stream: rx_stream, buf: Vec::with_capacity(4096) }),
        peer,
    })
}

impl Acceptor for TcpAcceptorT {
    fn accept_timeout(&self, timeout: Duration) -> Result<Duplex, NetError> {
        // lint: wall-clock-ok: real-socket accept deadline; the sim backend never runs this.
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => return tcp_duplex(stream, peer.to_string()),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // lint: wall-clock-ok: real-socket accept deadline; the sim backend never runs this.
                    if Instant::now() >= deadline {
                        return Err(NetError::Timeout);
                    }
                    std::thread::sleep(TCP_ACCEPT_POLL.min(timeout));
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }
}

/// Dials TCP addresses.
#[derive(Debug, Default, Clone)]
pub struct TcpDialer;

impl Dialer for TcpDialer {
    fn dial(&self, addr: &str) -> Result<Duplex, NetError> {
        match TcpStream::connect(addr) {
            Ok(stream) => tcp_duplex(stream, addr.to_string()),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                Err(NetError::Refused(addr.to_string()))
            }
            Err(e) => Err(NetError::Io(e.to_string())),
        }
    }
}

struct TcpTx {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameTx for TcpTx {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.buf.clear();
        frame.encode_into(&mut self.buf);
        self.stream.write_all(&self.buf).map_err(|e| match e.kind() {
            std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof => NetError::Closed,
            // A write timeout may have left a partial frame on the
            // stream; the connection is unusable either way — callers
            // treat Closed as final and fail over.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Closed,
            _ => NetError::Io(e.to_string()),
        })
    }
}

/// Incremental frame reassembly: `buf` accumulates bytes across calls,
/// so a timeout mid-frame never loses stream sync.
struct TcpRx {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl TcpRx {
    /// Pop one complete frame off the front of `buf`, if present.
    fn take_frame(&mut self) -> Result<Option<Frame>, NetError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = frame_len(self.buf[..4].try_into().expect("4 bytes"))?;
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = Frame::decode(&self.buf[4..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

impl FrameRx for TcpRx {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        // lint: wall-clock-ok: real-socket read deadline; the sim backend never runs this.
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(frame);
            }
            // lint: wall-clock-ok: real-socket read deadline; the sim backend never runs this.
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            // `set_read_timeout(None)` would block forever; clamp low.
            let remaining = (deadline - now).max(Duration::from_millis(1));
            self.stream
                .set_read_timeout(Some(remaining))
                .map_err(|e| NetError::Io(e.to_string()))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue; // deadline re-checked at loop top
                }
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                    return Err(NetError::Closed)
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
    }
}

// ------------------------------------------- simulated / in-process net

/// A frame queued for delivery at a virtual instant.
struct Delivery {
    at: Nanos,
    seq: u64,
    frame: Frame,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the earliest delivery (and
        // FIFO among equals) surfaces first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// An in-process network of frame pipes waiting in [`Clock`] time, with
/// per-destination [`LinkPlan`] fault injection. One `ChanNet` plays the
/// role of "the wire" for every listener registered on it.
///
/// ```
/// use dini_net::transport::{ChanNet, Acceptor, Dialer};
/// use dini_net::wire::Frame;
/// use dini_serve::Clock;
/// use std::time::Duration;
///
/// let net = ChanNet::new(Clock::system());
/// let acceptor = net.listen("srv");
/// let dialer = net.dialer();
/// let mut client = dialer.dial("srv").unwrap();
/// let mut server = acceptor.accept_timeout(Duration::from_secs(1)).unwrap();
/// client.tx.send(&Frame::Hello { proto: 1 }).unwrap();
/// assert_eq!(server.rx.recv_timeout(Duration::from_secs(1)).unwrap(), Frame::Hello { proto: 1 });
/// ```
pub struct ChanNet {
    clock: Clock,
    inner: Mutex<ChanInner>,
}

struct ChanInner {
    listeners: HashMap<String, Sender<Duplex>>,
    plans: HashMap<String, LinkPlan>,
    dials: u64,
}

impl ChanNet {
    /// A fresh network whose pipes wait in `clock` time.
    pub fn new(clock: Clock) -> Arc<Self> {
        Arc::new(Self {
            clock,
            inner: Mutex::new(ChanInner {
                listeners: HashMap::new(),
                plans: HashMap::new(),
                dials: 0,
            }),
        })
    }

    /// Register a listener at `addr` (any string; these are names, not
    /// sockets). Re-listening on a taken address replaces the listener.
    pub fn listen(self: &Arc<Self>, addr: &str) -> ChanAcceptor {
        let (tx, rx) = unbounded();
        self.inner.lock().expect("net lock").listeners.insert(addr.to_owned(), tx);
        ChanAcceptor { clock: self.clock.clone(), rx, addr: addr.to_owned() }
    }

    /// Apply `plan` to every connection subsequently dialed **to**
    /// `addr` (both directions of each such connection draw independent
    /// fate streams from it).
    pub fn set_link_plan(&self, addr: &str, plan: LinkPlan) {
        self.inner.lock().expect("net lock").plans.insert(addr.to_owned(), plan);
    }

    /// A dialer into this network.
    pub fn dialer(self: &Arc<Self>) -> Box<dyn Dialer> {
        Box::new(ChanDialer { net: self.clone() })
    }
}

/// The accepting side of a [`ChanNet`] listener.
pub struct ChanAcceptor {
    clock: Clock,
    rx: Receiver<Duplex>,
    addr: String,
}

impl Acceptor for ChanAcceptor {
    fn accept_timeout(&self, timeout: Duration) -> Result<Duplex, NetError> {
        match self.clock.recv_timeout(&self.rx, timeout) {
            Ok(d) => Ok(d),
            Err(RecvTimeoutError::Timeout) => Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    fn addr(&self) -> String {
        self.addr.clone()
    }
}

struct ChanDialer {
    net: Arc<ChanNet>,
}

impl Dialer for ChanDialer {
    fn dial(&self, addr: &str) -> Result<Duplex, NetError> {
        let (listener, plan, n) = {
            let mut inner = self.net.inner.lock().expect("net lock");
            let Some(listener) = inner.listeners.get(addr).cloned() else {
                return Err(NetError::Refused(addr.to_owned()));
            };
            let plan = inner.plans.get(addr).cloned().unwrap_or_else(LinkPlan::reliable);
            inner.dials += 1;
            (listener, plan, inner.dials)
        };
        let clock = self.net.clock.clone();
        let (c2s_tx, c2s_rx) = unbounded::<Delivery>();
        let (s2c_tx, s2c_rx) = unbounded::<Delivery>();
        let down_at = plan.down_at_ns;
        let server_half = Duplex {
            tx: Box::new(ChanTx { clock: clock.clone(), tx: s2c_tx, link: plan.state(n * 2) }),
            rx: Box::new(ChanRx {
                clock: clock.clone(),
                rx: c2s_rx,
                heap: BinaryHeap::new(),
                seq: 0,
                down_at,
                disconnected: false,
            }),
            peer: format!("dial-{n}"),
        };
        listener.send(server_half).map_err(|_| NetError::Refused(addr.to_owned()))?;
        Ok(Duplex {
            tx: Box::new(ChanTx { clock: clock.clone(), tx: c2s_tx, link: plan.state(n * 2 + 1) }),
            rx: Box::new(ChanRx {
                clock,
                rx: s2c_rx,
                heap: BinaryHeap::new(),
                seq: 0,
                down_at,
                disconnected: false,
            }),
            peer: addr.to_owned(),
        })
    }
}

struct ChanTx {
    clock: Clock,
    tx: Sender<Delivery>,
    link: dini_cluster::LinkState,
}

impl FrameTx for ChanTx {
    fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        let now = self.clock.now();
        match self.link.next(now) {
            FrameFate::Down => Err(NetError::Closed),
            FrameFate::Drop => Ok(()), // the sender believes it went out
            FrameFate::Deliver { offset_ns, duplicate_offset_ns } => {
                let first = Delivery { at: now + offset_ns, seq: 0, frame: frame.clone() };
                // A receiver that hung up looks like a closed socket.
                self.tx.send(first).map_err(|_| NetError::Closed)?;
                if let Some(dup) = duplicate_offset_ns {
                    let copy = Delivery { at: now + dup, seq: 0, frame: frame.clone() };
                    let _ = self.tx.send(copy);
                }
                Ok(())
            }
        }
    }
}

struct ChanRx {
    clock: Clock,
    rx: Receiver<Delivery>,
    /// Frames in flight, ordered by delivery instant (jitter reorders).
    heap: BinaryHeap<Delivery>,
    /// Receiver-side arrival counter: FIFO tie-break among frames due at
    /// the same instant.
    seq: u64,
    down_at: Option<Nanos>,
    disconnected: bool,
}

impl ChanRx {
    fn push(&mut self, mut d: Delivery) {
        self.seq += 1;
        d.seq = self.seq;
        self.heap.push(d);
    }
}

impl FrameRx for ChanRx {
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        let deadline = self.clock.now().saturating_add(dur_ns(timeout));
        loop {
            if !self.disconnected {
                while let Ok(d) = self.rx.try_recv() {
                    self.push(d);
                }
            }
            let now = self.clock.now();
            // A severed link loses whatever was in flight: Closed, not
            // a drained tail — that is what makes the client treat it
            // as an endpoint crash.
            if self.down_at.is_some_and(|t| now >= t) {
                return Err(NetError::Closed);
            }
            if self.heap.peek().is_some_and(|d| d.at <= now) {
                return Ok(self.heap.pop().expect("peeked").frame);
            }
            if now >= deadline {
                return Err(NetError::Timeout);
            }
            let mut wake = deadline;
            if let Some(d) = self.heap.peek() {
                wake = wake.min(d.at);
            }
            if let Some(t) = self.down_at {
                wake = wake.min(t);
            }
            if self.disconnected {
                if self.heap.is_empty() {
                    return Err(NetError::Closed);
                }
                // Peer hung up but frames are still "on the wire":
                // deliver them at their instants, then close.
                self.clock.sleep(Duration::from_nanos(wake.saturating_sub(now).max(1)));
                continue;
            }
            match self.clock.recv_deadline(&self.rx, wake) {
                Ok(d) => self.push(d),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => self.disconnected = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::StatusCode;
    use dini_cluster::FaultPlan;

    const SEC: Duration = Duration::from_secs(1);

    #[test]
    fn chan_net_round_trips_frames_both_ways() {
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("a");
        let mut c = net.dialer().dial("a").unwrap();
        let mut s = acc.accept_timeout(SEC).unwrap();
        c.tx.send(&Frame::EpochPing { req: 5 }).unwrap();
        assert_eq!(s.rx.recv_timeout(SEC).unwrap(), Frame::EpochPing { req: 5 });
        s.tx.send(&Frame::EpochPong { req: 5, live_keys: 1, snapshots: 2 }).unwrap();
        assert_eq!(
            c.rx.recv_timeout(SEC).unwrap(),
            Frame::EpochPong { req: 5, live_keys: 1, snapshots: 2 }
        );
    }

    #[test]
    fn dialing_nowhere_is_refused() {
        let net = ChanNet::new(Clock::system());
        assert!(matches!(net.dialer().dial("ghost"), Err(NetError::Refused(_))));
    }

    #[test]
    fn recv_times_out_then_still_delivers() {
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("a");
        let mut c = net.dialer().dial("a").unwrap();
        let mut s = acc.accept_timeout(SEC).unwrap();
        assert_eq!(s.rx.recv_timeout(Duration::from_millis(10)), Err(NetError::Timeout));
        c.tx.send(&Frame::Hello { proto: 1 }).unwrap();
        assert_eq!(s.rx.recv_timeout(SEC).unwrap(), Frame::Hello { proto: 1 });
    }

    #[test]
    fn dropped_peer_closes_after_draining_in_flight() {
        let net = ChanNet::new(Clock::system());
        let acc = net.listen("a");
        let mut c = net.dialer().dial("a").unwrap();
        let mut s = acc.accept_timeout(SEC).unwrap();
        c.tx.send(&Frame::Quiesce { req: 1 }).unwrap();
        drop(c);
        assert_eq!(s.rx.recv_timeout(SEC).unwrap(), Frame::Quiesce { req: 1 });
        assert_eq!(s.rx.recv_timeout(SEC), Err(NetError::Closed));
    }

    #[test]
    fn severed_link_fails_both_halves() {
        let sim = dini_serve::SimClock::new();
        let _main = sim.register_main();
        let clock = Clock::sim(&sim);
        let net = ChanNet::new(clock.clone());
        net.set_link_plan("a", LinkPlan::reliable().down_at(1_000_000));
        let acc = net.listen("a");
        let mut c = net.dialer().dial("a").unwrap();
        let mut s = acc.accept_timeout(SEC).unwrap();
        c.tx.send(&Frame::Hello { proto: 1 }).unwrap();
        assert_eq!(s.rx.recv_timeout(SEC).unwrap(), Frame::Hello { proto: 1 });
        clock.sleep(Duration::from_millis(2));
        assert_eq!(c.tx.send(&Frame::Hello { proto: 1 }), Err(NetError::Closed));
        assert_eq!(s.rx.recv_timeout(Duration::from_millis(1)), Err(NetError::Closed));
        assert_eq!(c.rx.recv_timeout(Duration::from_millis(1)), Err(NetError::Closed));
    }

    #[test]
    fn drops_lose_frames_silently_and_deterministically() {
        let run = || {
            let sim = dini_serve::SimClock::new();
            let _main = sim.register_main();
            let clock = Clock::sim(&sim);
            let net = ChanNet::new(clock.clone());
            net.set_link_plan("a", LinkPlan::reliable().with_faults(FaultPlan::with_drops(9, 0.5)));
            let acc = net.listen("a");
            let mut c = net.dialer().dial("a").unwrap();
            let mut s = acc.accept_timeout(SEC).unwrap();
            for i in 0..64 {
                c.tx.send(&Frame::EpochPing { req: i }).unwrap();
            }
            let mut got = Vec::new();
            while let Ok(f) = s.rx.recv_timeout(Duration::from_millis(1)) {
                got.push(f);
            }
            got
        };
        let a = run();
        assert!(a.len() > 8 && a.len() < 56, "p=0.5 drops must lose some frames: {}", a.len());
        assert_eq!(a, run(), "same seed, same survivors");
    }

    #[test]
    fn jitter_reorders_but_loses_nothing() {
        let sim = dini_serve::SimClock::new();
        let _main = sim.register_main();
        let clock = Clock::sim(&sim);
        let net = ChanNet::new(clock.clone());
        net.set_link_plan(
            "a",
            LinkPlan::reliable()
                .with_latency_ns(10_000)
                .with_faults(FaultPlan::with_jitter(3, 50_000.0)),
        );
        let acc = net.listen("a");
        let mut c = net.dialer().dial("a").unwrap();
        let mut s = acc.accept_timeout(SEC).unwrap();
        for i in 0..32 {
            c.tx.send(&Frame::EpochPing { req: i }).unwrap();
        }
        let mut reqs = Vec::new();
        for _ in 0..32 {
            match s.rx.recv_timeout(SEC).unwrap() {
                Frame::EpochPing { req } => reqs.push(req),
                other => panic!("unexpected {other:?}"),
            }
        }
        let mut sorted = reqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>(), "nothing lost");
        assert_ne!(reqs, sorted, "a 5x jitter window over send spacing must reorder");
    }

    #[test]
    fn tcp_loopback_round_trips_and_survives_partial_reads() {
        let acc = TcpAcceptorT::bind("127.0.0.1:0").unwrap();
        let addr = acc.addr();
        let t = std::thread::spawn(move || {
            let mut s = acc.accept_timeout(SEC).unwrap();
            let f1 = s.rx.recv_timeout(SEC).unwrap();
            let f2 = s.rx.recv_timeout(SEC).unwrap();
            s.tx.send(&Frame::Status { code: StatusCode::ShuttingDown }).unwrap();
            (f1, f2)
        });
        let mut c = TcpDialer.dial(&addr).unwrap();
        // Two frames in one write: the reassembly buffer must split them.
        c.tx.send(&Frame::Lookup { req: 1, trace: 0, parent: 0, keys: (0..500).collect() })
            .unwrap();
        c.tx.send(&Frame::EpochPing { req: 2 }).unwrap();
        let (f1, f2) = t.join().unwrap();
        assert_eq!(f1, Frame::Lookup { req: 1, trace: 0, parent: 0, keys: (0..500).collect() });
        assert_eq!(f2, Frame::EpochPing { req: 2 });
        assert_eq!(
            c.rx.recv_timeout(SEC).unwrap(),
            Frame::Status { code: StatusCode::ShuttingDown }
        );
        drop(c);
    }

    #[test]
    fn tcp_close_is_closed_and_refused_is_refused() {
        let acc = TcpAcceptorT::bind("127.0.0.1:0").unwrap();
        let addr = acc.addr();
        let mut c = TcpDialer.dial(&addr).unwrap();
        let s = acc.accept_timeout(SEC).unwrap();
        drop(s);
        assert_eq!(c.rx.recv_timeout(SEC), Err(NetError::Closed));
        drop(acc);
        // The listener is gone; connecting must fail (refused or reset,
        // OS-dependent — either way an error, never a hang).
        assert!(TcpDialer.dial(&addr).is_err());
    }
}
