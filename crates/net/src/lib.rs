//! # dini-net
//!
//! The transport layer that makes the repo the paper's cluster,
//! literally: Ma & Cooperman's master scatters query batches to slave
//! *processes on other nodes* and gathers sub-answers over a real
//! network. Everything `dini-serve` built — sharding, batching, replica
//! groups, failover — lived in one process behind channels; this crate
//! lifts the dispatcher↔caller boundary onto a wire so shards and
//! replicas can live in separate processes or hosts.
//!
//! * [`wire`] — a versioned, length-prefixed binary protocol: lookup
//!   batches, positionally-aligned replies, churn updates,
//!   quiesce/epoch round trips, shard-map handshake, and shutdown
//!   status. Decoding is total (corrupt input errors, never panics);
//!   `tests/prop_wire.rs` proptests every frame kind against random
//!   corruption.
//! * [`transport`] — the backend seam: [`FrameTx`]/[`FrameRx`]
//!   connection halves, [`Acceptor`]/[`Dialer`] for
//!   listening/connecting. Backends: **TCP** over `std::net` (real
//!   sockets, `TCP_NODELAY`, timeout-safe incremental framing) and
//!   **[`ChanNet`]** — in-process frame pipes waiting in `Clock` time
//!   and routed through `dini-cluster`'s seeded frame-fate machinery
//!   (drop / duplicate / jitter / latency / link-down), which is how
//!   `dini-simtest` runs whole multi-process deployments
//!   deterministically on virtual time. The third "backend" is no wire
//!   at all: in-process callers keep using
//!   [`ServerHandle`](dini_serve::ServerHandle) directly — that path is
//!   untouched and still allocation-free (`tests/zero_alloc.rs`).
//! * [`topology`] — spans (contiguous key slices, the process-level
//!   shards) and their replica endpoints; global ranks compose as
//!   `Σ live_keys(lower spans) + span_local_rank`.
//! * [`server`] — [`NetServer`]: an [`IndexServer`](dini_serve::IndexServer)
//!   hosted behind a listener; per-connection readers feed the existing
//!   admission queues, a per-connection responder redeems pooled reply
//!   slots and muxes replies back.
//! * [`client`] — [`RemoteClient`]/[`NetHandle`]: shard-map routing
//!   (the same delimiter search as `router.rs`), client-side batch
//!   coalescing (the same `collect_batch_into`), retry with reply
//!   deduplication, and connection-loss failover between replica
//!   endpoints — callers see the exact `ServeError` semantics local
//!   callers do.
//!
//! ## Two processes on one laptop
//!
//! ```bash
//! cargo run --release --example net_demo        # client process; spawns the server process
//! ```
//!
//! ## One process, wired loopback (tests, benches)
//!
//! ```
//! use dini_net::{Acceptor, ClientConfig, NetServer, NetServerConfig, RemoteClient, Topology};
//! use dini_net::transport::{ChanNet, TcpAcceptorT, TcpDialer};
//! use dini_serve::{Clock, ServeConfig};
//!
//! // A TCP server on an ephemeral loopback port…
//! let acceptor = TcpAcceptorT::bind("127.0.0.1:0").unwrap();
//! let addr = acceptor.addr();
//! let keys: Vec<u32> = (0..10_000).map(|i| i * 2).collect();
//! let topo = Topology::single(vec![addr.clone()]);
//! let mut serve = ServeConfig::new(2);
//! serve.slaves_per_shard = 1;
//! let server = NetServer::start(Box::new(acceptor), &keys, NetServerConfig::new(serve, topo, 0));
//!
//! // …and a remote client that learns the shard map from the handshake.
//! let client = RemoteClient::connect(Box::new(TcpDialer), &addr, ClientConfig::default()).unwrap();
//! assert_eq!(client.lookup(100).unwrap(), 51); // 0,2,…,100 → 51 keys ≤ 100
//! drop(client);
//! server.shutdown();
//! # let _ = ChanNet::new(Clock::system()); // the sim backend shares the same traits
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod topology;
pub mod transport;
pub mod wire;

pub use client::{
    run_net_load, ClientConfig, NetClientStats, NetHandle, PendingNetLookup, PendingNetUpdate,
    RemoteClient,
};
pub use server::{LogPosition, NetServer, NetServerConfig};
pub use topology::{Span, Topology};
pub use transport::{Acceptor, ChanNet, Dialer, Duplex, FrameRx, FrameTx, NetError};
pub use wire::{
    Frame, LookupStatus, ReplicaStatsMsg, StatsMsg, StatusCode, WireError, WireOp, WIRE_VERSION,
};
