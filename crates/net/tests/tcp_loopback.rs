//! End-to-end integration over real TCP loopback: `NetServer` processes
//! (in-process here, separate processes in `examples/net_demo.rs`)
//! serving a `RemoteClient` — exact answers under mixed Zipf + churn,
//! cross-span rank composition, and live failover between replica
//! endpoints when a server goes away.

use dini_net::transport::{TcpAcceptorT, TcpDialer};
use dini_net::{Acceptor, ClientConfig, NetServer, NetServerConfig, RemoteClient, Span, Topology};
use dini_obs::stitch;
use dini_serve::{ServeConfig, ServeError, TraceConfig};
use dini_workload::{ChurnGen, KeyDistribution, Op, OpMix};
use std::collections::BTreeSet;
use std::time::Duration;

fn serve_cfg(shards: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(shards);
    cfg.slaves_per_shard = 1;
    cfg.max_batch = 64;
    cfg.max_delay = Duration::from_micros(100);
    cfg
}

/// Bind first so the topology can carry the real ephemeral address.
fn bound_acceptor() -> (TcpAcceptorT, String) {
    let acceptor = TcpAcceptorT::bind("127.0.0.1:0").expect("bind loopback");
    let addr = acceptor.addr();
    (acceptor, addr)
}

#[test]
fn single_server_mixed_churn_matches_btreeset_oracle() {
    let keys: Vec<u32> = (0..40_000u32).map(|i| i * 8 + 1).collect();
    let key_space = 40_000u32 * 8 + 16;
    let (acceptor, addr) = bound_acceptor();
    let server = NetServer::start(
        Box::new(acceptor),
        &keys,
        NetServerConfig::new(serve_cfg(3), Topology::single(vec![addr.clone()]), 0),
    );

    let client = RemoteClient::connect(Box::new(TcpDialer), &addr, ClientConfig::default())
        .expect("connect");
    let handle = client.handle();

    // Interleave Zipf lookups with a deterministic churn stream mirrored
    // into a BTreeSet.
    let mut oracle: BTreeSet<u32> = keys.iter().copied().collect();
    let mut churn = ChurnGen::new(
        11,
        KeyDistribution::Clustered { lo: 0, hi: key_space },
        OpMix::write_heavy(),
    );
    for _ in 0..3_000 {
        let op = churn.next_op();
        match op {
            Op::Insert(k) => {
                oracle.insert(k);
            }
            Op::Delete(k) => {
                oracle.remove(&k);
            }
            Op::Query(_) => {}
        }
        client.update(op).expect("server alive");
    }
    client.quiesce().expect("quiesce over the wire");

    // Exact sweep: remote ranks equal the single-threaded mirror.
    for q in (0..key_space + 64).step_by(311) {
        let want = oracle.range(..=q).count() as u32;
        assert_eq!(handle.lookup(q), Ok(want), "rank({q}) over TCP diverged from the oracle");
    }
    assert_eq!(handle.live_keys(), oracle.len() as u64, "quiesce refreshed the live count");

    let stats = client.stats();
    assert_eq!(stats.client_shed, 0, "closed-loop traffic must not shed");
    drop(handle);
    drop(client);
    server.shutdown();
}

#[test]
fn lookup_many_coalesces_into_few_wire_batches() {
    let keys: Vec<u32> = (0..10_000u32).map(|i| i * 2).collect();
    let (acceptor, addr) = bound_acceptor();
    let server = NetServer::start(
        Box::new(acceptor),
        &keys,
        NetServerConfig::new(serve_cfg(2), Topology::single(vec![addr.clone()]), 0),
    );
    let client = RemoteClient::connect(Box::new(TcpDialer), &addr, ClientConfig::default())
        .expect("connect");
    let queries: Vec<u32> = (0..512u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
    let got = client.lookup_many(&queries).expect("batch lookup");
    for (q, rank) in queries.iter().zip(&got) {
        assert_eq!(*rank, keys.partition_point(|&k| k <= *q) as u32, "rank({q})");
    }
    // 512 keys submitted before any wait: client-side coalescing must
    // pack them into far fewer server batches than keys.
    let server_stats = server.server().stats();
    assert_eq!(server_stats.served, 512);
    assert!(
        server_stats.batches < 256,
        "coalescing failed: {} server batches for 512 keys",
        server_stats.batches
    );
    drop(client);
    server.shutdown();
}

#[test]
fn two_spans_compose_global_ranks_across_processes() {
    // Global key set split across two server processes at key 500_000.
    let keys: Vec<u32> = (0..50_000u32).map(|i| i * 20 + 5).collect();
    let split_at = 500_000u32;

    let (acc_lo, addr_lo) = bound_acceptor();
    let (acc_hi, addr_hi) = bound_acceptor();
    let topology = Topology {
        spans: vec![
            Span { lo_key: 0, endpoints: vec![addr_lo.clone()] },
            Span { lo_key: split_at, endpoints: vec![addr_hi] },
        ],
    };
    let parts = topology.split(&keys);
    assert!(!parts[0].is_empty() && !parts[1].is_empty(), "both spans populated");
    let lo = NetServer::start(
        Box::new(acc_lo),
        parts[0],
        NetServerConfig::new(serve_cfg(2), topology.clone(), 0),
    );
    let hi = NetServer::start(
        Box::new(acc_hi),
        parts[1],
        NetServerConfig::new(serve_cfg(2), topology.clone(), 1),
    );

    let client = RemoteClient::connect(Box::new(TcpDialer), &addr_lo, ClientConfig::default())
        .expect("connect via the lo-span bootstrap");
    let handle = client.handle();
    assert_eq!(handle.n_spans(), 2);

    // Static sweep: global ranks must compose across the two processes.
    for q in (0..1_100_000u32).step_by(7_919) {
        let want = keys.partition_point(|&k| k <= q) as u32;
        assert_eq!(handle.lookup(q), Ok(want), "global rank({q}) across two processes");
    }

    // Churn the *lower* span: ranks in the upper span must shift by the
    // applied inserts once quiesce refreshes the base ranks.
    let before = handle.lookup(u32::MAX).unwrap();
    for i in 0..200u32 {
        client.update(Op::Insert(i * 20 + 6)).expect("insert below the split");
    }
    client.quiesce().expect("quiesce both spans");
    assert_eq!(
        handle.lookup(u32::MAX),
        Ok(before + 200),
        "epoch-consistent base ranks: lower-span churn shifts upper-span ranks"
    );

    drop(handle);
    drop(client);
    lo.shutdown();
    hi.shutdown();
}

#[test]
fn live_stats_poll_agrees_with_client_accounting() {
    let keys: Vec<u32> = (0..30_000u32).map(|i| i * 4).collect();
    let (acceptor, addr) = bound_acceptor();
    let mut serve = serve_cfg(2);
    serve.replicas_per_shard = 2;
    let server = NetServer::start(
        Box::new(acceptor),
        &keys,
        NetServerConfig::new(serve, Topology::single(vec![addr.clone()]), 0),
    );
    let client = RemoteClient::connect(Box::new(TcpDialer), &addr, ClientConfig::default())
        .expect("connect");
    let handle = client.handle();

    // Load threads hammer lookups while the main thread polls stats
    // mid-flight: every poll must decode, report sane depths, and show
    // a monotonically growing served count.
    let issued = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loaders: Vec<_> = (0..3)
        .map(|t| {
            let h = handle.clone();
            let issued = issued.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let q = (i * 3 + t).wrapping_mul(2_654_435_761) % 200_000;
                    h.lookup(q).expect("server alive");
                    issued.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();

    let mut last_served = 0u64;
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(30));
        let s = handle.span_stats(0).expect("mid-load stats poll");
        assert!(s.served >= last_served, "served must be monotonic");
        last_served = s.served;
        assert_eq!(s.replicas.len(), 4, "2 shards × 2 replicas");
        assert_eq!(s.live_keys, 30_000);
        for r in &s.replicas {
            assert!(r.depth <= 1024, "depth within queue capacity, got {}", r.depth);
        }
        let split: u64 = s.replicas.iter().map(|r| r.served).sum();
        assert_eq!(split, s.served, "per-replica split must sum to the total");
    }
    assert!(last_served > 0, "polled stats must show live traffic");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for l in loaders {
        l.join().unwrap();
    }

    // Quiesced: the final wire-polled numbers agree with the client's
    // own accounting and the server's in-process view.
    let total_issued = issued.load(std::sync::atomic::Ordering::Relaxed);
    let s = handle.span_stats(0).expect("final stats poll");
    assert_eq!(s.served, total_issued, "wire-polled served == client-issued lookups");
    assert_eq!(s.served, server.server().stats().served, "wire == in-process view");
    assert_eq!(s.shed, 0, "closed-loop traffic must not shed");
    // Depth is released *after* replies go out, so give the last batch
    // a beat to drain before pinning the queues empty.
    let mut drained = s.replicas.iter().all(|r| r.depth == 0);
    for _ in 0..50 {
        if drained {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        let s = handle.span_stats(0).expect("drain poll");
        drained = s.replicas.iter().all(|r| r.depth == 0);
    }
    assert!(drained, "queues must drain once load stops");

    // The client saw its own wire round trips too.
    let rtt = handle.wire_rtt();
    assert!(rtt.count() > 0, "wire RTT histogram must have samples");
    for t in handle.wire_traces() {
        assert!(t.acked_ns >= t.encoded_ns, "wire stages must be ordered");
    }

    drop(handle);
    drop(client);
    server.shutdown();
}

#[test]
fn dense_tracing_stitches_monotone_timelines_over_tcp() {
    // The causal-tracing story over a real kernel socket: every frame
    // traced on both sides, then the client's wire records and the
    // server's stage records stitched on the shared trace id. Both
    // processes live here, so `Clock::system()`'s process-wide anchor
    // makes the two record sets directly comparable, and each timeline
    // must be monotone — encoded before admitted, answered before acked
    // — with real wire time in between.
    let keys: Vec<u32> = (0..20_000u32).map(|i| i * 4).collect();
    let (acceptor, addr) = bound_acceptor();
    let dense = TraceConfig { capacity: 4096, sample_period: 1, seed: 0x5EED };
    let mut serve = serve_cfg(2);
    serve.trace = dense.clone();
    let server = NetServer::start(
        Box::new(acceptor),
        &keys,
        NetServerConfig::new(serve, Topology::single(vec![addr.clone()]), 0),
    );
    let cfg = ClientConfig { trace: dense, ..ClientConfig::default() };
    let client = RemoteClient::connect(Box::new(TcpDialer), &addr, cfg).expect("connect");
    let handle = client.handle();

    for i in 0..400u32 {
        let q = i.wrapping_mul(2_654_435_761) % 100_000;
        let want = keys.partition_point(|&k| k <= q) as u32;
        assert_eq!(handle.lookup(q), Ok(want), "rank({q}) over TCP");
    }

    let client_recs = handle.wire_traces();
    let server_recs = server.server().stage_traces();
    let timelines = stitch(&client_recs, &server_recs);
    assert!(
        !timelines.is_empty(),
        "dense tracing over TCP stitched no timeline ({} client wire records, {} server \
         stage records)",
        client_recs.len(),
        server_recs.len()
    );
    for t in &timelines {
        assert!(
            t.monotone(),
            "stitched TCP timeline for trace {:#x} is not monotone: {t:?}",
            t.trace
        );
        assert!(t.total_ns() > 0, "a TCP round trip takes nonzero wall time");
    }

    drop(handle);
    drop(client);
    server.shutdown();
}

#[test]
fn endpoint_shutdown_fails_over_to_replica_endpoint() {
    let keys: Vec<u32> = (0..20_000u32).map(|i| i * 4).collect();
    let (acc_a, addr_a) = bound_acceptor();
    let (acc_b, addr_b) = bound_acceptor();
    let topology = Topology::single(vec![addr_a.clone(), addr_b]);
    // Two independent full replicas of the same span.
    let a = NetServer::start(
        Box::new(acc_a),
        &keys,
        NetServerConfig::new(serve_cfg(2), topology.clone(), 0),
    );
    let b = NetServer::start(
        Box::new(acc_b),
        &keys,
        NetServerConfig::new(serve_cfg(2), topology.clone(), 0),
    );

    let cfg = ClientConfig { retry_timeout: Duration::from_millis(250), ..ClientConfig::default() };
    let client = RemoteClient::connect(Box::new(TcpDialer), &addr_a, cfg).expect("connect");
    let handle = client.handle();

    let check = |n: u32, label: &str| {
        for i in 0..n {
            let q = i.wrapping_mul(747_796_405) % 100_000;
            let want = keys.partition_point(|&k| k <= q) as u32;
            assert_eq!(handle.lookup(q), Ok(want), "{label}: rank({q})");
        }
    };
    check(200, "both endpoints up");

    // Kill endpoint A mid-service: the client must notice (shutdown
    // notice or closed socket), re-home anything in flight, and keep
    // answering through B — degraded capacity, not errors.
    a.shutdown();
    check(300, "after endpoint A shut down");
    assert!(handle.span_alive(0), "the span survives endpoint A through replica B");

    // Server-side: B actually served traffic.
    assert!(b.server().stats().served > 0, "replica endpoint B must have served lookups");

    // Kill B too: now the span is gone and callers see ShuttingDown,
    // exactly the local-caller semantics.
    b.shutdown();
    let mut saw_shutdown = false;
    for i in 0..50u32 {
        if handle.lookup(i * 13) == Err(ServeError::ShuttingDown) {
            saw_shutdown = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(saw_shutdown, "with every endpoint gone the client must surface ShuttingDown");
}
