//! The replicated churn log's failure contract, pinned at the client
//! boundary:
//!
//! * `update()` returning `Ok` means the record is quorum-acked and
//!   applied — a dropped `Update` frame delays the `Ok` (the appender
//!   repairs by resending the unacked suffix), it never produces a
//!   silent `Ok`-but-lost. With every endpoint gone, `update()` errors.
//! * `ctrl_roundtrip`'s timeout-retry fills its waiter exactly once:
//!   a late first ack plus the retry's ack is one resolution, duplicate
//!   and stray acks (including byzantine sequence numbers) are dropped
//!   on the floor.

use dini_cluster::LinkPlan;
use dini_net::transport::ChanNet;
use dini_net::wire::SpanMsg;
use dini_net::{Acceptor, ClientConfig, Frame, NetServer, NetServerConfig, RemoteClient, Topology};
use dini_serve::{Clock, ServeConfig, ServeError, SimClock};
use dini_workload::Op;
use std::time::Duration;

const MS: u64 = 1_000_000;

/// Satellite: the control-plane timeout-retry path. A hand-scripted
/// server withholds the first `QuiesceAck` until the client's
/// per-attempt `ctrl_timeout` forces a retry (same request id), then
/// answers *both* attempts and salts the stream with a stray
/// `UpdateAck { req: 0 }` and a byzantine ack whose sequence is far
/// past anything appended. The waiter must resolve exactly once, the
/// strays must be dropped, and the client must stay fully functional
/// afterwards (the churn-log appender in particular must survive the
/// byzantine sequence number).
#[test]
fn ctrl_retry_fills_waiter_once_and_strays_are_dropped() {
    let net = ChanNet::new(Clock::system());
    let acceptor = net.listen("srv");

    let server = std::thread::spawn(move || {
        // Connection 1: the bootstrap handshake.
        let mut boot = acceptor.accept_timeout(Duration::from_secs(5)).expect("bootstrap dial");
        match boot.rx.recv_timeout(Duration::from_secs(5)).expect("hello") {
            Frame::Hello { .. } => {}
            other => panic!("expected Hello, got {other:?}"),
        }
        boot.tx
            .send(&Frame::ShardMap {
                spans: vec![SpanMsg { lo_key: 0, endpoints: vec!["srv".to_owned()] }],
                my_span: 0,
                live_keys: 0,
                log_epoch: 0,
                log_seq: 0,
            })
            .expect("shard map");

        // Connection 2: the endpoint the client actually talks to.
        let mut conn = acceptor.accept_timeout(Duration::from_secs(5)).expect("endpoint dial");
        let mut applied = 0u64;
        let mut quiesce_done = false;
        // A recv error means the client hung up: the script is over.
        while let Ok(frame) = conn.rx.recv_timeout(Duration::from_secs(5)) {
            match frame {
                Frame::EpochPing { req } => {
                    let live_keys = if quiesce_done { 7 } else { 0 };
                    conn.tx.send(&Frame::EpochPong { req, live_keys, snapshots: 0 }).expect("pong");
                }
                Frame::Update { req, epoch, seq, ops, .. } => {
                    if seq == applied + 1 {
                        applied += ops.len() as u64;
                    }
                    if req != 0 {
                        conn.tx
                            .send(&Frame::UpdateAck { req, epoch, seq: applied })
                            .expect("update ack");
                    }
                }
                Frame::Quiesce { req } => {
                    assert!(!quiesce_done, "the barrier must not run twice");
                    // Withhold the ack: the next frame must be the
                    // client retrying the *same* request id after its
                    // per-attempt ctrl_timeout expired.
                    match conn.rx.recv_timeout(Duration::from_secs(5)).expect("retry") {
                        Frame::Quiesce { req: retry } => {
                            assert_eq!(retry, req, "a ctrl retry must reuse its request id")
                        }
                        other => panic!("expected the Quiesce retry, got {other:?}"),
                    }
                    // Strays first: a req-0 ack (guarded) and a
                    // byzantine sequence far past the log head (the
                    // appender must clamp, not corrupt its trim).
                    conn.tx.send(&Frame::UpdateAck { req: 0, epoch: 1, seq: 0 }).expect("stray");
                    conn.tx
                        .send(&Frame::UpdateAck { req: 7_777, epoch: 1, seq: 999 })
                        .expect("byzantine stray");
                    // Now both attempts' acks: late first + retry's.
                    // One waiter, so exactly one may land.
                    for _ in 0..2 {
                        conn.tx
                            .send(&Frame::QuiesceAck { req, live_keys: 7, snapshots: 1 })
                            .expect("quiesce ack");
                    }
                    quiesce_done = true;
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }
        applied
    });

    let cfg = ClientConfig {
        ctrl_timeout: Duration::from_millis(100),
        handshake_timeout: Duration::from_secs(2),
        max_retries: 4,
        ..ClientConfig::default()
    };
    let client = RemoteClient::connect(net.dialer(), "srv", cfg).expect("connect");

    // The barrier resolves Ok despite the withheld first ack, and the
    // (single) fill carried the ack's live-key payload.
    client.quiesce().expect("quiesce must survive a timeout-retry");
    let handle = client.handle();
    assert_eq!(handle.live_keys(), 7, "the quiesce ack's live count must land");

    // The appender survived the stray and byzantine acks: a real append
    // still quorum-acks, and a refresh still round-trips.
    client.update(Op::Insert(42)).expect("append after the stray acks");
    handle.refresh().expect("refresh after the stray acks");

    drop(handle);
    drop(client);
    let applied = server.join().expect("scripted server");
    assert_eq!(applied, 1, "exactly the one real append must have applied");
}

fn sim_serve_cfg(clock: &Clock) -> ServeConfig {
    let mut serve = ServeConfig::new(2);
    serve.slaves_per_shard = 1;
    serve.max_batch = 64;
    serve.max_delay = Duration::from_micros(100);
    serve.clock = clock.clone();
    serve
}

fn sim_client_cfg(clock: &Clock) -> ClientConfig {
    ClientConfig {
        clock: clock.clone(),
        max_batch: 64,
        max_delay: Duration::from_micros(100),
        retry_timeout: Duration::from_millis(4),
        max_retries: 50,
        ctrl_timeout: Duration::from_millis(20),
        handshake_timeout: Duration::from_millis(20),
        ..ClientConfig::default()
    }
}

/// Satellite (the regression the tentpole exists for): a blackout
/// window swallows the first `Update` frame to one replica. The old
/// fire-and-forget broadcast returned `Ok` and silently diverged; the
/// churn log must instead hold the `Ok` until the appender's repair
/// resends the suffix and a quorum (here: both endpoints) has acked —
/// acked *and applied*, never silently lost.
#[test]
fn update_is_not_ok_until_quorum_applied_despite_dropped_frames() {
    let sim = SimClock::new();
    let _main = sim.register_main();
    let clock = Clock::sim(&sim);
    let net = ChanNet::new(clock.clone());

    let keys: Vec<u32> = (0..1_000u32).map(|i| i * 4).collect();
    let topology = Topology::single(vec!["a".to_owned(), "b".to_owned()]);
    let latency = 50_000u64; // 50 µs one way
                             // Endpoint a goes dark for frames sent in [20ms, 80ms) — long
                             // enough to swallow the first sends and several repair attempts,
                             // short enough that the appender's retry budget (50 × 4ms) never
                             // declares it dead.
    net.set_link_plan(
        "a",
        LinkPlan::reliable().with_latency_ns(latency).blackout_ns(20 * MS, 80 * MS),
    );
    net.set_link_plan("b", LinkPlan::reliable().with_latency_ns(latency));

    let servers: Vec<NetServer> = ["a", "b"]
        .iter()
        .map(|addr| {
            NetServer::start(
                Box::new(net.listen(addr)),
                &keys,
                NetServerConfig::new(sim_serve_cfg(&clock), topology.clone(), 0),
            )
        })
        .collect();

    let client = RemoteClient::connect(net.dialer(), "a", sim_client_cfg(&clock)).expect("connect");
    let handle = client.handle();

    // Step into the blackout, then append: the first Update frame to a
    // is dropped, so an immediate Ok would be the old silent-divergence
    // bug. The call must block until the repair path lands it on both.
    clock.sleep(Duration::from_millis(30));
    let mut mirror: std::collections::BTreeSet<u32> = keys.iter().copied().collect();
    for i in 0..20u32 {
        let k = 2_001 + i * 2;
        client.update(Op::Insert(k)).expect("append during the blackout");
        mirror.insert(k);
    }
    assert!(
        sim.now() >= 80 * MS,
        "updates appended mid-blackout must not resolve before the window heals \
         (resolved at {} ns)",
        sim.now()
    );
    client.quiesce().expect("post-heal barrier");

    // Applied everywhere, not just quorum-acked somewhere: both server
    // processes hold the full mirror, and wire ranks agree with it.
    for (name, srv) in ["a", "b"].iter().zip(&servers) {
        assert_eq!(srv.server().len(), mirror.len(), "replica {name} must converge to the mirror");
    }
    for q in (0..4_200u32).step_by(97) {
        let expect = mirror.range(..=q).count() as u32;
        assert_eq!(handle.lookup(q), Ok(expect), "post-heal rank({q})");
    }

    let stats = client.stats();
    assert!(
        stats.update_resends >= 1,
        "the blackout must have forced at least one suffix resend, got {}",
        stats.update_resends
    );
    assert_eq!(stats.elections, 0, "nobody died; the epoch must not move");

    drop(handle);
    drop(client);
    for s in servers {
        s.shutdown();
    }
}

/// With every endpoint of the span gone, `update()` must surface an
/// error once the retry budget is spent — the "never silently lost"
/// half: the op is either acked-and-applied or reported failed.
#[test]
fn update_errors_once_the_whole_span_is_gone() {
    let sim = SimClock::new();
    let _main = sim.register_main();
    let clock = Clock::sim(&sim);
    let net = ChanNet::new(clock.clone());

    let keys: Vec<u32> = (0..500u32).map(|i| i * 3).collect();
    let topology = Topology::single(vec!["solo".to_owned()]);
    net.set_link_plan("solo", LinkPlan::reliable().with_latency_ns(50_000).down_at(10 * MS));

    let server = NetServer::start(
        Box::new(net.listen("solo")),
        &keys,
        NetServerConfig::new(sim_serve_cfg(&clock), topology.clone(), 0),
    );

    let mut cfg = sim_client_cfg(&clock);
    cfg.retry_timeout = Duration::from_millis(2);
    cfg.max_retries = 3;
    let client = RemoteClient::connect(net.dialer(), "solo", cfg).expect("connect");

    // Past the severance instant every frame (and every ack) is gone.
    clock.sleep(Duration::from_millis(15));
    assert_eq!(
        client.update(Op::Insert(9_999)),
        Err(ServeError::ShuttingDown),
        "an unackable append must error, not hang and not claim success"
    );
    assert!(client.stats().elections >= 1, "the endpoint's death must have bumped the epoch");

    drop(client);
    server.shutdown();
}
