//! Property tests for the wire protocol: every frame kind round-trips
//! through encode/decode bit-exactly, and *no* byte-level corruption —
//! truncation, mutation, garbage — can make the decoder panic or
//! allocate unboundedly. The decoder is the one part of the system that
//! reads bytes written by somebody else; it must be total.
//!
//! The flight-journal entry codec lives under the same contract — its
//! bytes are read back by a *different process* after a crash — so its
//! properties ride along here.

use dini_flight::{decode_entry, encode_entry, FlightEvent, ENTRY_BYTES};
use dini_net::wire::{
    frame_len, Frame, LookupStatus, ReplicaStatsMsg, SpanMsg, StatsMsg, StatusCode, WireOp,
    MAX_FRAME_LEN,
};
use proptest::collection::vec as prop_vec;
use proptest::prelude::*;

/// Short printable strings for endpoint addresses.
fn addr() -> impl Strategy<Value = String> {
    prop_vec(0u8..26, 1..12)
        .prop_map(|bytes| bytes.into_iter().map(|b| (b'a' + b) as char).collect::<String>())
}

fn span_msg() -> impl Strategy<Value = SpanMsg> {
    (any::<u32>(), prop_vec(addr(), 1..4))
        .prop_map(|(lo_key, endpoints)| SpanMsg { lo_key, endpoints })
}

fn lookup_status() -> impl Strategy<Value = LookupStatus> {
    prop_oneof![
        any::<u32>().prop_map(LookupStatus::Rank),
        any::<u32>().prop_map(LookupStatus::Shed),
        Just(LookupStatus::Shutdown),
    ]
}

fn wire_op() -> impl Strategy<Value = WireOp> {
    prop_oneof![any::<u32>().prop_map(WireOp::Insert), any::<u32>().prop_map(WireOp::Delete)]
}

/// Any journal entry a writer could produce (seq 0 means "empty slot",
/// so valid entries start at 1).
fn flight_event() -> impl Strategy<Value = FlightEvent> {
    (
        (1u64..=u64::MAX, any::<u64>()),
        (any::<u16>(), any::<u16>(), any::<u32>()),
        (any::<u64>(), any::<u64>()),
    )
        .prop_map(|((seq, time_ns), (kind, a, b), (c, d))| FlightEvent {
            seq,
            time_ns,
            kind,
            a,
            b,
            c,
            d,
        })
}

fn replica_stats_msg() -> impl Strategy<Value = ReplicaStatsMsg> {
    (any::<u16>(), any::<u16>(), any::<u64>(), any::<u64>()).prop_map(
        |(shard, replica, depth, served)| ReplicaStatsMsg { shard, replica, depth, served },
    )
}

fn stats_msg() -> impl Strategy<Value = StatsMsg> {
    (
        prop_vec(any::<u64>(), 17),
        prop_vec(replica_stats_msg(), 0..24),
        prop_vec(any::<u64>(), 0..64),
    )
        .prop_map(|(s, replicas, heat)| StatsMsg {
            served: s[0],
            admitted: s[1],
            shed: s[2],
            rerouted: s[3],
            batches: s[4],
            snapshots: s[5],
            merges: s[6],
            live_keys: s[7],
            p50_ns: s[8],
            p99_ns: s[9],
            p999_ns: s[10],
            trace_records: s[11],
            stage_wait_ns: s[12],
            stage_service_ns: s[13],
            stage_fill_ns: s[14],
            log_epoch: s[15],
            log_seq: s[16],
            replicas,
            heat,
        })
}

/// Every frame kind, with arbitrary payloads.
fn frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<u16>().prop_map(|proto| Frame::Hello { proto }),
        (prop_vec(span_msg(), 1..5), any::<u16>(), (any::<u64>(), any::<u64>(), any::<u64>()))
            .prop_map(|(spans, my_span, (live_keys, log_epoch, log_seq))| Frame::ShardMap {
                spans,
                my_span,
                live_keys,
                log_epoch,
                log_seq,
            }),
        (any::<u64>(), any::<u64>(), any::<u32>(), prop_vec(any::<u32>(), 0..300))
            .prop_map(|(req, trace, parent, keys)| Frame::Lookup { req, trace, parent, keys }),
        (any::<u64>(), any::<u64>(), any::<u32>(), prop_vec(lookup_status(), 0..300))
            .prop_map(|(req, trace, parent, results)| Frame::Reply { req, trace, parent, results }),
        (
            (any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u32>()),
            prop_vec(wire_op(), 0..100)
        )
            .prop_map(|((req, epoch, seq), (trace, parent), ops)| Frame::Update {
                req,
                epoch,
                seq,
                trace,
                parent,
                ops
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(req, epoch, seq)| Frame::UpdateAck {
            req,
            epoch,
            seq
        }),
        any::<u64>().prop_map(|req| Frame::Quiesce { req }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(req, live_keys, snapshots)| {
            Frame::QuiesceAck { req, live_keys, snapshots }
        }),
        any::<u64>().prop_map(|req| Frame::EpochPing { req }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(req, live_keys, snapshots)| {
            Frame::EpochPong { req, live_keys, snapshots }
        }),
        Just(Frame::Status { code: StatusCode::ShuttingDown }),
        any::<u64>().prop_map(|req| Frame::StatsRequest { req }),
        (any::<u64>(), stats_msg())
            .prop_map(|(req, stats)| Frame::StatsReply { req, stats: Box::new(stats) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_frame_round_trips_bit_exactly(f in frame()) {
        let bytes = f.encode();
        let len = frame_len(bytes[..4].try_into().unwrap()).expect("emitted prefix is valid");
        prop_assert_eq!(len, bytes.len() - 4, "length prefix covers the body exactly");
        prop_assert!(len as u32 <= MAX_FRAME_LEN);
        let decoded = Frame::decode(&bytes[4..]).expect("own encoding must decode");
        prop_assert_eq!(decoded, f);
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking(f in frame(), frac in 0u32..1000) {
        let bytes = f.encode();
        let body = &bytes[4..];
        // Cut strictly inside the body (an empty prefix is also covered).
        let cut = (frac as usize * body.len()) / 1000;
        prop_assume!(cut < body.len());
        prop_assert!(
            Frame::decode(&body[..cut]).is_err(),
            "a proper prefix of a frame body must never decode"
        );
    }

    #[test]
    fn single_byte_corruption_never_panics(f in frame(), pos in any::<u32>(), bit in 0u32..8) {
        let bytes = f.encode();
        let mut body = bytes[4..].to_vec();
        let pos = pos as usize % body.len();
        body[pos] ^= 1 << bit;
        // Either it still decodes (the flipped bit landed in a payload)
        // or it errors; the call returning at all is the property.
        let _ = Frame::decode(&body);
    }

    #[test]
    fn random_garbage_never_panics(bytes in prop_vec(any::<u8>(), 0..600)) {
        let _ = Frame::decode(&bytes);
        if bytes.len() >= 4 {
            let _ = frame_len(bytes[..4].try_into().unwrap());
        }
    }

    #[test]
    fn reply_statuses_preserve_order_and_payloads(statuses in prop_vec(lookup_status(), 0..600)) {
        let f = Frame::Reply { req: 7, trace: 9, parent: 2, results: statuses.clone() };
        let bytes = f.encode();
        match Frame::decode(&bytes[4..]).expect("round trip") {
            Frame::Reply { req, trace, parent, results } => {
                prop_assert_eq!((req, trace, parent), (7, 9, 2));
                prop_assert_eq!(results, statuses);
            }
            other => prop_assert!(false, "wrong kind back: {:?}", other),
        }
    }

    #[test]
    fn journal_entries_round_trip_bit_exactly(ev in flight_event()) {
        let bytes = encode_entry(&ev);
        prop_assert_eq!(decode_entry(&bytes), Some(ev));
    }

    #[test]
    fn corrupted_journal_entries_are_rejected_not_misread(
        ev in flight_event(),
        pos in 0usize..ENTRY_BYTES,
        bit in 0u32..8,
    ) {
        let mut bytes = encode_entry(&ev);
        bytes[pos] ^= 1 << bit;
        prop_assert_eq!(
            decode_entry(&bytes),
            None,
            "a single flipped bit anywhere in the slot must fail the checksum"
        );
    }

    #[test]
    fn random_journal_slots_never_panic(bytes in prop_vec(any::<u8>(), 0..128)) {
        // Wrong lengths and garbage alike: the call returning is the
        // property (an accidental checksum match is a 2^-64 event).
        let _ = decode_entry(&bytes);
    }
}
