//! `net_throughput`: what the wire costs — the serving layer driven
//! through the in-process `ServerHandle` vs through `RemoteClient` over
//! TCP loopback, swept over shards × coalescing delay.
//!
//! Two outputs:
//!
//! * criterion-style timings on stderr (`cargo bench -p dini-net`);
//! * `BENCH_net.json` at the repo root: one record per
//!   (transport × shards × max_delay) cell with throughput and
//!   p50/p99/p999, carrying the previous run's `results` along as
//!   `previous_results` (same convention as `BENCH_serve.json`), so the
//!   transport-overhead trajectory is machine-trackable PR over PR.
//!
//! Setting `DINI_NET_BENCH_SMOKE=1` runs a seconds-long smoke sweep and
//! writes the JSON to a scratch path — CI uses it to keep the
//! generation path honest without clobbering real numbers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dini_net::transport::{TcpAcceptorT, TcpDialer};
use dini_net::{
    run_net_load, Acceptor, ClientConfig, NetServer, NetServerConfig, RemoteClient, Topology,
};
use dini_serve::{run_load, IndexServer, KeyDistribution, LoadMode, LoadReport, ServeConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

struct BenchParams {
    n_keys: usize,
    clients: usize,
    lookups_per_client: usize,
    shard_axis: &'static [usize],
    delay_axis_us: &'static [u64],
    out_path: PathBuf,
    keep_previous: bool,
}

fn real_out_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json"))
}

fn params() -> BenchParams {
    if std::env::var_os("DINI_NET_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty()) {
        BenchParams {
            n_keys: 20_000,
            clients: 2,
            lookups_per_client: 500,
            shard_axis: &[1, 2],
            delay_axis_us: &[0, 50],
            out_path: std::env::temp_dir().join("BENCH_net.smoke.json"),
            keep_previous: false,
        }
    } else {
        BenchParams {
            n_keys: 200_000,
            clients: 8,
            lookups_per_client: 10_000,
            shard_axis: &[1, 2, 4],
            delay_axis_us: &[0, 50, 200],
            out_path: real_out_path(),
            keep_previous: true,
        }
    }
}

fn keys(p: &BenchParams) -> Vec<u32> {
    (0..p.n_keys as u32).map(|i| i * 16 + 3).collect()
}

fn serve_cfg(shards: usize, delay_us: u64) -> ServeConfig {
    let mut cfg = ServeConfig::new(shards);
    cfg.slaves_per_shard = 2;
    cfg.max_batch = 256;
    cfg.max_delay = Duration::from_micros(delay_us);
    cfg
}

/// The in-process cell: the PR-2 read path, unchanged.
fn inproc_cell(p: &BenchParams, shards: usize, delay_us: u64) -> LoadReport {
    let s = IndexServer::build(&keys(p), serve_cfg(shards, delay_us));
    run_load(
        &s.handle(),
        KeyDistribution::Zipf { n_buckets: 256, s: 1.1 },
        42,
        LoadMode::Closed { clients: p.clients, lookups_per_client: p.lookups_per_client },
    )
}

/// The TCP-loopback cell: same server shape, driven through the wire
/// by [`run_net_load`] (same report shape as the in-process cell).
fn tcp_cell(p: &BenchParams, shards: usize, delay_us: u64) -> LoadReport {
    let acceptor = TcpAcceptorT::bind("127.0.0.1:0").expect("bind loopback");
    let addr = acceptor.addr();
    let server = NetServer::start(
        Box::new(acceptor),
        &keys(p),
        NetServerConfig::new(serve_cfg(shards, delay_us), Topology::single(vec![addr.clone()]), 0),
    );
    let client = RemoteClient::connect(Box::new(TcpDialer), &addr, ClientConfig::default())
        .expect("connect loopback");
    let report = run_net_load(
        &client.handle(),
        KeyDistribution::Zipf { n_buckets: 256, s: 1.1 },
        42,
        p.clients,
        p.lookups_per_client,
    );
    drop(client);
    server.shutdown();
    report
}

/// The previous run's `results` array (verbatim record lines), if the
/// output file already holds one — the "before" half of before/after.
fn previous_results(p: &BenchParams) -> Option<String> {
    if !p.keep_previous {
        return None;
    }
    let text = std::fs::read_to_string(&p.out_path).ok()?;
    let open = "\n  \"results\": [\n";
    let start = text.find(open)? + open.len();
    let end = start + text[start..].find("\n  ]")?;
    Some(text[start..end].to_string())
}

fn record_line(r: &LoadReport, prefix: &str) -> String {
    format!(
        "    {{{prefix}\"throughput_lps\": {:.0}, \"completed\": {}, \"shed\": {}, \
         \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}}",
        r.throughput_lps(),
        r.completed,
        r.shed,
        r.latency_ns.quantile(0.50) / 1e3,
        r.latency_ns.quantile(0.99) / 1e3,
        r.latency_ns.quantile(0.999) / 1e3,
    )
}

fn emit_json(p: &BenchParams) {
    let previous = previous_results(p);
    let mut records = String::new();
    for &transport in &["inproc", "tcp"] {
        for &shards in p.shard_axis {
            for &delay_us in p.delay_axis_us {
                let r = match transport {
                    "inproc" => inproc_cell(p, shards, delay_us),
                    _ => tcp_cell(p, shards, delay_us),
                };
                eprintln!(
                    "net sweep transport={transport} shards={shards} delay={delay_us}µs: {}",
                    r.summary()
                );
                if !records.is_empty() {
                    records.push_str(",\n");
                }
                let _ = write!(
                    records,
                    "{}",
                    record_line(
                        &r,
                        &format!(
                            "\"transport\": \"{transport}\", \"shards\": {shards}, \
                             \"max_delay_us\": {delay_us}, "
                        )
                    )
                );
            }
        }
    }
    let previous_block = match previous {
        Some(ref old) => format!(
            ",\n  \"previous_results_semantics\": \"the results array this file held when \
             the current run was emitted — compare only runs from the same machine\",\n  \
             \"previous_results\": [\n{old}\n  ]"
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"net_throughput\",\n  \"host\": {},\n  \"keys\": {},\n  \
         \"clients\": {},\n  \"lookups_per_client\": {},\n  \
         \"distribution\": \"zipf(256, 1.1)\",\n  \"results\": [\n{records}\n  \
         ]{previous_block}\n}}\n",
        dini_obs::host_context().to_json(),
        p.n_keys,
        p.clients,
        p.lookups_per_client,
    );
    std::fs::write(&p.out_path, json).expect("write BENCH_net.json");
    eprintln!("wrote {}", p.out_path.display());
}

/// Criterion timings of the remote caller paths on a fixed loopback
/// server (2 shards, 50 µs coalescing).
fn bench_remote_paths(c: &mut Criterion, p: &BenchParams) {
    let acceptor = TcpAcceptorT::bind("127.0.0.1:0").expect("bind loopback");
    let addr = acceptor.addr();
    let server = NetServer::start(
        Box::new(acceptor),
        &keys(p),
        NetServerConfig::new(serve_cfg(2, 50), Topology::single(vec![addr.clone()]), 0),
    );
    let client = RemoteClient::connect(Box::new(TcpDialer), &addr, ClientConfig::default())
        .expect("connect loopback");
    let h = client.handle();
    let queries: Vec<u32> = (0..1024u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();

    let mut g = c.benchmark_group("net");
    g.throughput(Throughput::Elements(1));
    g.bench_function("tcp_single_lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9);
            h.lookup(i).unwrap()
        })
    });
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("tcp_lookup_many_1024", |b| b.iter(|| h.lookup_many(&queries).unwrap().len()));
    g.finish();
    drop(h);
    drop(client);
    server.shutdown();
}

fn bench_sweep(c: &mut Criterion) {
    let p = params();
    emit_json(&p);
    bench_remote_paths(c, &p);
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
