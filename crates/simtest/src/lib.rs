//! # dini-simtest
//!
//! FoundationDB-style deterministic simulation testing for the
//! `dini-serve` stack: the **actual** [`IndexServer`] — dispatchers,
//! admission queues, the writer's snapshot/merge machinery, and
//! open-loop arrival processes — runs on a seeded
//! [`SimClock`], so
//!
//! * idle waits fast-forward: a multi-second soak finishes in
//!   milliseconds of wall-clock;
//! * hostile schedules are *scripted*, not hoped for: a
//!   [`ServeFaultPlan`] crashes a shard (or one replica of it)
//!   mid-batch, jitters the dispatch path, or turns one shard or
//!   replica into a straggler at an exact virtual instant — and the
//!   replica scenarios then hold failover to "degraded capacity, never
//!   errors": a crashed replica's backlog must be re-routed and
//!   answered exactly, not resolved to `ShuttingDown`;
//! * every run is reproducible: the scheduler folds its event trace
//!   into a digest, and the same scenario + seed yields the same digest
//!   bit-for-bit — a failure replays exactly.
//!
//! The crate exposes a scenario runner ([`run_scenario`]) whose
//! invariant oracles hold for *every* scenario:
//!
//! 1. **Reply completeness** — every issued lookup resolves exactly
//!    once, as a rank, a shed, or a shutdown. (The scheduler's deadlock
//!    detector enforces the "at least once" half: a lost reply strands
//!    its waiter and panics the run instead of hanging.)
//! 2. **Answer correctness** — with no concurrent churn, every rank is
//!    checked against `keys.partition_point`; with churn, a
//!    post-quiesce sweep checks ranks against a replayed `BTreeSet`
//!    mirror of the deterministic churn stream.
//! 3. **Latency bound** — in virtual time, service is instantaneous and
//!    delays are only what the configuration and fault plan inject, so
//!    the scenario can assert a *tight* bound on the worst served
//!    latency (`max_delay` + a small multiple of the injected delays) —
//!    a bound wall-clock tests could never hold.
//! 4. **Accounting** — client-side and server-side counters agree
//!    (sheds match exactly; no reply without an admission).
//!
//! Scenario tests live in `tests/scenarios.rs` and run across a seed
//! matrix sized by the `DINI_SIMTEST_SEEDS` env var.
//!
//! ## Running a scenario
//!
//! A scenario is plain data: describe the server, the load, and the
//! faults, then run it under a seed — the whole multi-threaded server
//! executes on virtual time and the call returns a deterministic
//! [`Report`]:
//!
//! ```
//! use dini_simtest::{run_scenario, Scenario};
//!
//! let mut sc = Scenario::base("doc-example");
//! sc.clients = 1;
//! sc.lookups_per_client = 50;
//! sc.replicas_per_shard = 2; // a replica group per shard
//! let report = run_scenario(&sc, 42);
//! assert_eq!(report.issued, 50);
//! assert_eq!(report.ok, 50, "fault-free: every lookup answers");
//! assert_eq!(report.per_replica_served.len(), sc.shards * 2);
//! assert_eq!(run_scenario(&sc, 42), report, "same seed, same run");
//! ```

#![warn(missing_docs)]

pub mod net;

pub use net::{
    run_net_scenario, run_net_scenario_reproducibly, run_restart_scenario,
    run_restart_scenario_reproducibly, NetReport, NetScenario, RestartReport, RestartScenario,
};

use dini_serve::{
    Clock, IndexServer, PendingLookup, ServeConfig, ServeError, ServeFaultPlan, ServerHandle,
    SimClock, TraceConfig,
};
use dini_workload::{
    gen_sorted_unique_keys, ArrivalGen, ArrivalProcess, ChurnGen, KeyDistribution, KeyGen, Op,
    OpMix,
};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Salt mixed into per-purpose RNG seeds so the key, arrival, churn, and
/// fault streams of one scenario seed are decorrelated.
const CHURN_SALT: u64 = 0xC0A1_E5CE ^ 0x9E37_79B9_7F4A_7C15;

/// One deterministic scenario: a server shape, a load shape, a fault
/// plan, and the oracles to hold it to.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name (labels panics and reports).
    pub name: &'static str,
    /// Initial sorted key count.
    pub n_keys: usize,
    /// Server shards.
    pub shards: usize,
    /// Replicated dispatchers per shard (1 = the classic single
    /// dispatcher; more enables failover and load-aware routing
    /// scenarios).
    pub replicas_per_shard: usize,
    /// Coalescing bound: queries per batch.
    pub max_batch: usize,
    /// Coalescing bound: max wait for co-travellers.
    pub max_delay: Duration,
    /// Admission queue depth per shard.
    pub queue_capacity: usize,
    /// Writer delta budget before merge/rebuild.
    pub merge_threshold: usize,
    /// Writer ops per snapshot publication.
    pub publish_every: usize,
    /// Open-loop client threads.
    pub clients: usize,
    /// Arrivals issued per client.
    pub lookups_per_client: usize,
    /// Per-client arrival process (virtual time).
    pub arrival: ArrivalProcess,
    /// Concurrent churn operations fed by a dedicated updater thread
    /// (0 = static keys, enabling per-reply exact verification).
    pub churn_ops: usize,
    /// Virtual pause between churn operations.
    pub churn_gap: Duration,
    /// Deterministic fault plan (crashes / jitter / stragglers).
    pub faults: ServeFaultPlan,
    /// Upper bound on the worst *served* latency (server-side, virtual).
    /// `None` disables the oracle (e.g. under overload, where queueing
    /// delay is the point).
    pub latency_bound: Option<Duration>,
    /// Issue a mid-run `quiesce()` and verify immediate visibility.
    pub quiesce_mid_run: bool,
    /// Stage-trace sampling period (1 = trace every request, 0 =
    /// tracing off). Sampled records feed the stage-timing oracle and
    /// their count is pinned in the deterministic report.
    pub trace_sample_period: u64,
}

impl Scenario {
    /// A small, fast, fault-free baseline scenario; override fields per
    /// test.
    pub fn base(name: &'static str) -> Self {
        Self {
            name,
            n_keys: 8_192,
            shards: 3,
            replicas_per_shard: 1,
            max_batch: 32,
            max_delay: Duration::from_micros(200),
            queue_capacity: 1024,
            merge_threshold: 4096,
            publish_every: 64,
            clients: 3,
            lookups_per_client: 400,
            arrival: ArrivalProcess::poisson_rate(20_000.0),
            churn_ops: 0,
            churn_gap: Duration::from_micros(50),
            faults: ServeFaultPlan::none(),
            latency_bound: Some(Duration::from_micros(250)),
            quiesce_mid_run: false,
            trace_sample_period: 64,
        }
    }

    /// Shards this scenario's fault plan kills *entirely* — a
    /// shard-wide crash, or per-replica crashes covering every one of
    /// its replicas. A shard with a surviving replica keeps answering
    /// (failover), so only fully crashed shards are excluded from
    /// post-run probes.
    fn fully_crashed_shards(&self) -> Vec<usize> {
        let mut gone: Vec<usize> = self.faults.crash_at.iter().map(|&(s, _)| s).collect();
        for s in 0..self.shards {
            let dead_replicas = (0..self.replicas_per_shard)
                .filter(|&r| {
                    self.faults.crash_replica_at.iter().any(|&(cs, cr, _)| (cs, cr) == (s, r))
                })
                .count();
            if dead_replicas == self.replicas_per_shard {
                gone.push(s);
            }
        }
        gone.sort_unstable();
        gone.dedup();
        gone
    }
}

/// Deterministic outcome of one scenario run. Two runs of the same
/// scenario with the same seed produce `Report`s that compare equal —
/// including the scheduler's event-trace `digest`, which pins the entire
/// thread interleaving, not just the totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// FNV-1a fold of every scheduling event (block/wake/advance/…).
    pub digest: u64,
    /// Number of scheduling events folded into `digest`.
    pub events: u64,
    /// Virtual time consumed by the whole scenario.
    pub virtual_ns: u64,
    /// Lookups issued by all clients.
    pub issued: u64,
    /// Lookups answered with a rank.
    pub ok: u64,
    /// Lookups shed by admission control (client-observed).
    pub shed: u64,
    /// Lookups answered `ShuttingDown` (crashed shard, at submit or in
    /// flight).
    pub shutdown: u64,
    /// Queries served (server-side).
    pub served: u64,
    /// Requests admitted (server-side).
    pub admitted: u64,
    /// Worst served latency in virtual nanoseconds (server-side).
    pub max_latency_ns: u64,
    /// Writer merges (index rebuilds).
    pub merges: u64,
    /// Snapshot epochs published.
    pub snapshots: u64,
    /// Churn operations that mutated the index.
    pub updates_applied: u64,
    /// Exact-rank assertions performed (during-run + post-quiesce).
    pub oracle_checks: u64,
    /// Requests re-routed from crashed replicas to surviving siblings
    /// (failover hand-offs; 0 in any scenario without replica crashes).
    pub rerouted: u64,
    /// Queries served per replica, replica-major
    /// (`shard * replicas_per_shard + replica`) — the breakdown the
    /// straggler and load-balance oracles read.
    pub per_replica_served: Vec<u64>,
    /// Stage-trace records sampled across all replicas. Same seed, same
    /// schedule, same samples — pinned by the reproducibility contract
    /// like every other field.
    pub trace_records: u64,
}

/// What one probe client observed.
struct Tally {
    issued: u64,
    ok: u64,
    shed: u64,
    shutdown: u64,
    oracle_checks: u64,
}

/// An open-loop probe client: issues `n_lookups` on a seeded arrival
/// schedule (admission never waits on replies), then drains. When
/// `verify` is set (static key set), every rank is checked on the spot.
fn probe_client(
    h: ServerHandle,
    keys: Arc<Vec<u32>>,
    seed: u64,
    n_lookups: usize,
    arrival: ArrivalProcess,
    verify: bool,
) -> Tally {
    let clock = h.clock().clone();
    let mut keygen = KeyGen::new(seed, KeyDistribution::Uniform);
    let mut arrivals = ArrivalGen::new(seed ^ 0x9E37_79B9, arrival);
    let mut t = Tally { issued: 0, ok: 0, shed: 0, shutdown: 0, oracle_checks: 0 };
    let mut in_flight: Vec<(u32, PendingLookup)> = Vec::new();
    let start = clock.now();
    let mut at = 0u64;
    for _ in 0..n_lookups {
        at = arrivals.next_at_ns(at);
        let target = start.saturating_add(at);
        loop {
            let now = clock.now();
            if now >= target {
                break;
            }
            clock.sleep(Duration::from_nanos(target - now));
        }
        t.issued += 1;
        let key = keygen.next_key();
        match h.begin_lookup(key) {
            Ok(pending) => in_flight.push((key, pending)),
            Err(ServeError::Overloaded { .. }) => t.shed += 1,
            Err(ServeError::ShuttingDown) => t.shutdown += 1,
        }
    }
    for (key, pending) in in_flight {
        match pending.wait() {
            Ok(rank) => {
                t.ok += 1;
                if verify {
                    let expect = keys.partition_point(|&k| k <= key) as u32;
                    assert_eq!(rank, expect, "rank({key}) wrong under simulation");
                    t.oracle_checks += 1;
                }
            }
            Err(ServeError::ShuttingDown) => t.shutdown += 1,
            Err(ServeError::Overloaded { .. }) => t.shed += 1,
        }
    }
    t
}

/// Replay the churn stream a scenario's updater thread fed, into a
/// `BTreeSet` mirror (the generator is deterministic, so this is exact).
fn churn_mirror(sc: &Scenario, seed: u64, initial: &[u32]) -> BTreeSet<u32> {
    let mut set: BTreeSet<u32> = initial.iter().copied().collect();
    let mut gen = churn_gen(seed);
    for _ in 0..sc.churn_ops {
        match gen.next_op() {
            Op::Insert(k) => {
                set.insert(k);
            }
            Op::Delete(k) => {
                set.remove(&k);
            }
            Op::Query(_) => {}
        }
    }
    set
}

fn churn_gen(seed: u64) -> ChurnGen {
    // No queries in the mix: the updater thread only mutates; lookups
    // come from the probe clients.
    ChurnGen::new(
        seed ^ CHURN_SALT,
        KeyDistribution::Uniform,
        OpMix { query: 0.0, insert: 0.6, delete: 0.4 },
    )
}

/// Run `sc` once under seed `seed` and enforce its oracles. Panics (with
/// the scenario name) on any violation; returns the deterministic
/// [`Report`] otherwise.
pub fn run_scenario(sc: &Scenario, seed: u64) -> Report {
    let sim = SimClock::new();
    let _main = sim.register_main();
    let clock = Clock::sim(&sim);

    let keys = Arc::new(gen_sorted_unique_keys(sc.n_keys, seed));
    let mut cfg = ServeConfig::new(sc.shards);
    cfg.replicas_per_shard = sc.replicas_per_shard;
    cfg.max_batch = sc.max_batch;
    cfg.max_delay = sc.max_delay;
    cfg.queue_capacity = sc.queue_capacity;
    cfg.merge_threshold = sc.merge_threshold;
    cfg.publish_every = sc.publish_every;
    cfg.slaves_per_shard = 1; // thread economy: scenarios sweep many seeds
    cfg.clock = clock.clone();
    cfg.faults = sc.faults.clone();
    cfg.trace = if sc.trace_sample_period == 0 {
        TraceConfig::disabled()
    } else {
        TraceConfig { capacity: 4096, sample_period: sc.trace_sample_period, seed }
    };
    let server = IndexServer::build(&keys, cfg);
    let handle = server.handle();

    // Concurrent churn, from a dedicated (sim-registered) updater thread.
    let churn_thread = (sc.churn_ops > 0).then(|| {
        let updater = server.updater();
        let clock2 = clock.clone();
        let mut gen = churn_gen(seed);
        let (ops, gap) = (sc.churn_ops, sc.churn_gap);
        clock.spawn("simtest-churn", move || {
            for _ in 0..ops {
                clock2.sleep(gap);
                if updater.update(gen.next_op()).is_err() {
                    break;
                }
            }
        })
    });

    // Probe clients. Exact per-reply verification only makes sense when
    // the key set is static.
    let verify_during = sc.churn_ops == 0;
    let client_threads: Vec<_> = (0..sc.clients)
        .map(|id| {
            let h = handle.clone();
            let keys = keys.clone();
            let (n, arrival) = (sc.lookups_per_client, sc.arrival);
            let seed_c = seed.wrapping_add(1 + id as u64);
            clock.spawn(&format!("simtest-client-{id}"), move || {
                probe_client(h, keys, seed_c, n, arrival, verify_during)
            })
        })
        .collect();

    if sc.quiesce_mid_run {
        // Quiesce while clients are genuinely in flight: sleep partway
        // into the load window first (under the sim clock, blocking
        // main is what hands the clients and the churn feeder their
        // turns), then demand full visibility mid-storm.
        clock.sleep(Duration::from_millis(2));
        server.quiesce();
    }

    let mut issued = 0u64;
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut shutdown = 0u64;
    let mut oracle_checks = 0u64;
    for t in client_threads {
        let t = t.join().expect("probe client panicked");
        issued += t.issued;
        ok += t.ok;
        shed += t.shed;
        shutdown += t.shutdown;
        oracle_checks += t.oracle_checks;
    }
    if let Some(t) = churn_thread {
        t.join().expect("churn thread panicked");
    }

    // Oracle 1: reply completeness — every issued lookup resolved
    // exactly once. (That none hung is enforced by the scheduler's
    // deadlock detector: a lost reply cannot terminate the run.)
    assert_eq!(
        issued,
        ok + shed + shutdown,
        "[{}] lookups unaccounted for: issued {issued}, ok {ok}, shed {shed}, \
         shutdown {shutdown}",
        sc.name
    );

    // Post-churn sweep: quiesce, then check ranks against the mirror on
    // shards with at least one surviving replica (failover keeps a
    // partially crashed shard answering).
    server.quiesce();
    let crashed = sc.fully_crashed_shards();
    let mirror = churn_mirror(sc, seed, &keys);
    let mut probe = 0x9E37u32;
    for _ in 0..256 {
        probe = probe.wrapping_mul(2_654_435_761).wrapping_add(12_345);
        if crashed.contains(&handle.shard_of(probe)) {
            continue;
        }
        let expect = mirror.range(..=probe).count() as u32;
        assert_eq!(
            handle.lookup(probe).expect("surviving shard must answer"),
            expect,
            "[{}] post-quiesce rank({probe}) diverged from the churn mirror",
            sc.name
        );
        oracle_checks += 1;
    }

    let stats = server.stats();

    // Oracle 3: virtual-time latency bound over every served query.
    let max_latency_ns = stats.latency_ns.max() as u64;
    if let Some(bound) = sc.latency_bound {
        assert!(
            stats.served == 0 || max_latency_ns <= bound.as_nanos() as u64,
            "[{}] worst served latency {max_latency_ns} ns exceeds the virtual-time bound \
             {} ns (max_delay + injected delays)",
            sc.name,
            bound.as_nanos()
        );
    }

    // Oracle 4: client- and server-side accounting agree. (Probe clients
    // are the only lookup traffic; the post-quiesce sweep adds `ok`s.)
    assert_eq!(shed, stats.shed, "[{}] shed counts disagree", sc.name);
    assert!(ok <= stats.admitted, "[{}] more oks than admissions", sc.name);

    // Oracle 5: stage-timing — every sampled trace record advances
    // monotonically through admitted → collected → dispatched →
    // answered → filled on the virtual clock, batches respect the
    // configured ceiling, and when the scenario declares a latency
    // bound, both the coalescing wait and the full stage span honour
    // it (the bound covers admitted→answered, which is exactly the
    // per-query latency Oracle 3 already pins).
    let traces = server.stage_traces();
    for r in &traces {
        assert!(r.stages_monotonic(), "[{}] stage trace not monotonic: {r:?}", sc.name);
        assert!(
            (r.batch_len as usize) >= 1 && (r.batch_len as usize) <= sc.max_batch,
            "[{}] traced batch of {} outside 1..={}",
            sc.name,
            r.batch_len,
            sc.max_batch
        );
        assert!(
            (r.shard as usize) < sc.shards && (r.replica as usize) < sc.replicas_per_shard,
            "[{}] trace record from unknown replica {}/{}",
            sc.name,
            r.shard,
            r.replica
        );
        if let Some(bound) = sc.latency_bound {
            let bound = bound.as_nanos() as u64;
            assert!(
                r.wait_ns() <= bound && r.answered_ns.saturating_sub(r.admitted_ns) <= bound,
                "[{}] traced stage span exceeds the virtual-time bound {bound} ns: {r:?}",
                sc.name
            );
        }
        oracle_checks += 1;
    }
    if sc.trace_sample_period == 1 && sc.faults.is_noop() {
        // Dense sampling with no crashes: every served query was
        // considered, so a busy run must have retained records.
        assert!(
            stats.served == 0 || !traces.is_empty(),
            "[{}] dense tracing recorded nothing across {} served",
            sc.name,
            stats.served
        );
    }

    let report = Report {
        digest: 0, // filled after the server (and its threads) wind down
        events: 0,
        virtual_ns: 0,
        issued,
        ok,
        shed,
        shutdown,
        served: stats.served,
        admitted: stats.admitted,
        max_latency_ns,
        merges: stats.merges,
        snapshots: stats.snapshots_published,
        updates_applied: stats.updates_applied,
        oracle_checks,
        rerouted: stats.rerouted,
        per_replica_served: server.replica_stats().iter().map(|s| s.served).collect(),
        trace_records: traces.len() as u64,
    };
    drop(handle);
    drop(server);
    let (digest, events) = sim.digest();
    Report { digest, events, virtual_ns: sim.now(), ..report }
}

/// Run the scenario twice with the same seed and assert the runs are
/// identical — totals *and* the full event-trace digest — then return
/// the report. This is the reproducibility contract every scenario test
/// goes through.
pub fn run_scenario_reproducibly(sc: &Scenario, seed: u64) -> Report {
    let a = run_scenario(sc, seed);
    let b = run_scenario(sc, seed);
    assert_eq!(
        a, b,
        "[{}] seed {seed} did not reproduce: wall-clock leaked into the simulation",
        sc.name
    );
    a
}

/// The scenario seed matrix: `DINI_SIMTEST_SEEDS` selects how many seeds
/// to sweep (default 3; CI sets 8). Virtual time makes extra seeds
/// cheap. An unparsable value panics rather than silently shrinking the
/// advertised matrix.
pub fn seeds_from_env() -> Vec<u64> {
    let n = match std::env::var("DINI_SIMTEST_SEEDS") {
        Ok(v) => v
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("DINI_SIMTEST_SEEDS must be a seed count, got {v:?}")),
        Err(_) => 3,
    };
    (0..n.clamp(1, 64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_scenario_is_clean_and_reproducible() {
        let report = run_scenario_reproducibly(&Scenario::base("unit-base"), 1);
        assert_eq!(report.issued, 3 * 400);
        assert_eq!(report.shed, 0);
        assert_eq!(report.shutdown, 0);
        assert!(report.oracle_checks > 1000);
        assert!(report.virtual_ns > 0);
    }

    #[test]
    fn distinct_seeds_distinct_schedules() {
        let sc = Scenario::base("unit-seeds");
        let a = run_scenario(&sc, 1);
        let b = run_scenario(&sc, 2);
        assert_ne!(a.digest, b.digest, "different seeds must interleave differently");
    }
}
