//! Network-fault scenarios: whole multi-process deployments — several
//! [`NetServer`]s, a [`RemoteClient`], and the wire between them — on
//! seeded deterministic virtual time.
//!
//! The transport runs over [`ChanNet`], whose frames route through
//! `dini-cluster`'s seeded fate machinery: per-link fixed latency,
//! jitter (reordering), drops, duplicates, and link severance at an
//! exact virtual instant. Because every thread (server dispatchers,
//! acceptors, connection readers/responders, client workers, probe
//! clients) waits through the same [`SimClock`], an entire cluster run
//! folds into one event-trace digest and replays bit-for-bit.
//!
//! Always-on oracles, the network edition of [`crate::run_scenario`]'s:
//!
//! 1. **Reply completeness** — every issued lookup resolves exactly
//!    once (rank, shed, or shutdown); a lost reply deadlocks the sim
//!    and panics with a thread dump instead of hanging. Retries and
//!    duplicated frames must not double-resolve anything — the
//!    in-flight map drops duplicate replies, and the generation-tagged
//!    reply cells make a double fill impossible.
//! 2. **Answer exactness** — with a static key set every rank is
//!    checked against `keys.partition_point` at reap time, drops,
//!    jitter, and failover notwithstanding; with churn, a post-quiesce
//!    sweep checks against a replayed `BTreeSet` mirror (epoch
//!    consistency across processes: cross-span base ranks must be
//!    refreshed by the quiesce acks).
//! 3. **Bounded tails** — in virtual time the client-observed latency
//!    is exactly coalescing + wire + injected delays, so jitter
//!    scenarios assert a tight end-to-end bound.
//! 4. **Failover** — a severed endpoint link (the network view of an
//!    endpoint crash) must degrade capacity, never correctness:
//!    surviving replica endpoints answer everything.
//! 5. **Replica convergence** — with churn, every replica process that
//!    kept its link is checked against the churn mirror after the
//!    quiesce barrier: applied-op set sizes match and sampled local
//!    ranks agree, so a dropped, duplicated, or blacked-out update
//!    frame can never silently diverge one replica.
//!
//! Two opt-in oracles check the observability plane itself:
//!
//! 6. **Causal tracing** ([`NetScenario::dense_tracing`]) — with every
//!    frame traced on both sides, the client's wire records and the
//!    servers' stage records must stitch into causal timelines on the
//!    shared trace id, each monotone on virtual time.
//! 7. **Flight recorder** ([`NetScenario::flight`]) — the client's
//!    crash-safe journal must record exactly one event per counted
//!    election and update resend; the restart scenarios extend this to
//!    the server's checkpoint story, read cold off disk after a kill.

use dini_cluster::{FaultPlan, LinkPlan};
use dini_net::transport::ChanNet;
use dini_net::{ClientConfig, NetHandle, NetServer, NetServerConfig, RemoteClient, Span, Topology};
use dini_obs::{stitch, StageRecord};
use dini_serve::clock::dur_ns;
use dini_serve::{
    read_journal, Clock, EventKind, FlightJournal, Nanos, ServeConfig, ServeError, SimClock,
    StorePlan, TraceConfig,
};
use dini_workload::{
    gen_sorted_unique_keys, ArrivalGen, ArrivalProcess, ChurnGen, KeyDistribution, KeyGen, Op,
    OpMix,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Salt decorrelating churn from key/arrival streams (same constant
/// family as the in-process scenarios).
const NET_CHURN_SALT: u64 = 0x5EA5_1DE5 ^ 0x9E37_79B9_7F4A_7C15;

/// Monotone counter making each flight-enabled net run's journal
/// scratch directory unique — the reproducibility wrapper runs the same
/// seed twice and the second run must not recover the first run's
/// events.
static FLIGHT_RUN: AtomicU64 = AtomicU64::new(0);

/// Trace-every-frame config used on both sides of the wire when
/// [`NetScenario::dense_tracing`] is on (the sampling seed is
/// irrelevant at period 1; the capacity just has to outlast the run).
fn dense_trace() -> TraceConfig {
    TraceConfig { capacity: 8192, sample_period: 1, seed: 0x5EED }
}

/// One deterministic multi-process scenario.
#[derive(Debug, Clone)]
pub struct NetScenario {
    /// Name (labels panics and reports).
    pub name: &'static str,
    /// Initial sorted key count (split evenly across spans).
    pub n_keys: usize,
    /// Spans (server *processes* along the key space).
    pub spans: usize,
    /// Replica endpoints per span (independent full copies; the client
    /// fails over between them).
    pub endpoints_per_span: usize,
    /// Shards inside each server process.
    pub shards_per_server: usize,
    /// Server-side coalescing window.
    pub server_max_delay: Duration,
    /// Client-side coalescing window.
    pub client_max_delay: Duration,
    /// Client resend timeout for unanswered lookup batches.
    pub retry_timeout: Duration,
    /// Client retry budget before declaring an endpoint dead.
    pub max_retries: u32,
    /// Open-loop probe clients.
    pub clients: usize,
    /// Arrivals issued per client.
    pub lookups_per_client: usize,
    /// Per-client arrival process (virtual time).
    pub arrival: ArrivalProcess,
    /// Churn operations fed through the client (0 = static keys,
    /// enabling per-reply exact verification). Updates ride the
    /// replicated churn log: sequence-numbered, applied in order, and
    /// each op resolves only once quorum-acked — dropped, duplicated,
    /// or blacked-out update frames are repaired by suffix resend.
    pub churn_ops: usize,
    /// Virtual pause between churn operations.
    pub churn_gap: Duration,
    /// Fixed one-way link latency (all links).
    pub link_latency: Duration,
    /// Per-frame drop probability (all links).
    pub drop_prob: f64,
    /// Per-frame duplicate probability (all links).
    pub duplicate_prob: f64,
    /// Uniform per-frame delivery jitter in `[0, max)` (all links;
    /// reorders frames).
    pub jitter_max: Duration,
    /// Sever the link to these flat endpoint indices (span-major) at a
    /// virtual instant — the network view of an endpoint crash.
    pub link_down: Vec<(usize, Duration)>,
    /// Black out the link to these flat endpoint indices over a
    /// half-open virtual window `[start, end)`: frames sent inside it
    /// are dropped, the link heals afterwards — a partition that ends,
    /// where `link_down` is a crash that doesn't.
    pub blackout: Vec<(usize, Duration, Duration)>,
    /// Upper bound on the worst client-observed latency (reap-time
    /// measured; the probe reaps on a 100 µs cadence, already included
    /// in the bound you pass). `None` disables (e.g. under drops, where
    /// tails legitimately include retry timeouts).
    pub latency_bound: Option<Duration>,
    /// Mid-load `StatsRequest` polls issued per span by a dedicated
    /// sim-registered poller thread (0 = no wire introspection). Each
    /// successful poll asserts the served counter is monotone and never
    /// ahead of admissions — live observability riding the same lookup
    /// socket as the load it observes.
    pub stats_polls: usize,
    /// Virtual pause between stats polls.
    pub stats_poll_gap: Duration,
    /// Trace every frame (client) and every request (server) instead of
    /// sampling, then stitch client wire records to server stage records
    /// on the shared trace id post-run and assert each timeline is
    /// monotone on virtual time. Clean-link scenarios only: a retried
    /// frame re-encodes, so a reply answered from an earlier delivered
    /// attempt would legitimately violate cross-attempt ordering.
    pub dense_tracing: bool,
    /// Attach a crash-safe flight journal to the client and assert
    /// post-run that the recorded event story matches the live
    /// counters: one `Election` record per observed epoch bump and one
    /// `UpdateResend` per counted resend.
    pub flight: bool,
}

impl NetScenario {
    /// A small, fast, fault-free two-span baseline; override per test.
    pub fn base(name: &'static str) -> Self {
        Self {
            name,
            n_keys: 8_192,
            spans: 2,
            endpoints_per_span: 1,
            shards_per_server: 2,
            server_max_delay: Duration::from_micros(200),
            client_max_delay: Duration::from_micros(100),
            retry_timeout: Duration::from_millis(5),
            max_retries: 40,
            clients: 2,
            lookups_per_client: 300,
            arrival: ArrivalProcess::poisson_rate(20_000.0),
            churn_ops: 0,
            churn_gap: Duration::from_micros(50),
            link_latency: Duration::from_micros(50),
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            jitter_max: Duration::ZERO,
            link_down: Vec::new(),
            blackout: Vec::new(),
            latency_bound: None,
            stats_polls: 0,
            stats_poll_gap: Duration::from_micros(500),
            dense_tracing: false,
            flight: false,
        }
    }
}

/// Deterministic outcome of one net scenario run; two same-seed runs
/// compare equal, digest included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetReport {
    /// FNV-1a fold of every scheduling event.
    pub digest: u64,
    /// Scheduling events folded into `digest`.
    pub events: u64,
    /// Virtual time the whole deployment consumed.
    pub virtual_ns: u64,
    /// Lookups issued by all probe clients.
    pub issued: u64,
    /// Lookups answered with a (verified) rank.
    pub ok: u64,
    /// Lookups shed (client- or server-side admission).
    pub shed: u64,
    /// Lookups resolved `ShuttingDown`.
    pub shutdown: u64,
    /// Lookup batches the client resent after a reply timeout.
    pub retries: u64,
    /// Lookups re-homed from a dead endpoint to a surviving replica.
    pub rerouted: u64,
    /// Churn-log suffixes resent to lagging or lossy endpoints.
    pub update_resends: u64,
    /// Churn-log epoch bumps (an endpoint died with appends pending).
    pub elections: u64,
    /// Worst client-observed latency (issue → reap), virtual ns.
    pub max_client_latency_ns: u64,
    /// Exact-rank assertions performed.
    pub oracle_checks: u64,
    /// Queries served per server process (span-major).
    pub served_per_server: Vec<u64>,
    /// Churn operations that mutated some server's index.
    pub updates_applied: u64,
    /// Mid-load wire stats polls that came back (each one oracle-checked
    /// for monotone accounting).
    pub stats_polls_ok: u64,
    /// Client↔server causal timelines stitched post-run (dense tracing
    /// only; each one asserted monotone on virtual time).
    pub stitched_timelines: u64,
    /// Events the client's flight journal recorded (flight scenarios
    /// only; the election/resend subsets are asserted against the live
    /// counters).
    pub flight_events: u64,
}

struct Tally {
    issued: u64,
    ok: u64,
    shed: u64,
    shutdown: u64,
    checks: u64,
    max_latency_ns: Nanos,
}

/// Longest a probe lets a completed reply sit unreaped (bounds the
/// latency-measurement error, exactly like `loadgen`'s open loop).
const REAP_CADENCE: Duration = Duration::from_micros(100);

/// Open-loop probe over the wire: seeded arrivals, aggressive reaping,
/// optional per-reply exact verification against the static key set.
fn net_probe(
    h: NetHandle,
    keys: Arc<Vec<u32>>,
    seed: u64,
    n_lookups: usize,
    arrival: ArrivalProcess,
    verify: bool,
) -> Tally {
    let clock = h.clock().clone();
    let mut keygen = KeyGen::new(seed, KeyDistribution::Uniform);
    let mut arrivals = ArrivalGen::new(seed ^ 0x9E37_79B9, arrival);
    let mut t = Tally { issued: 0, ok: 0, shed: 0, shutdown: 0, checks: 0, max_latency_ns: 0 };
    let mut in_flight: Vec<(u32, Nanos, dini_net::PendingNetLookup)> = Vec::new();
    let start = clock.now();
    let mut at = 0u64;

    let reap = |in_flight: &mut Vec<(u32, Nanos, dini_net::PendingNetLookup)>,
                t: &mut Tally,
                clock: &Clock| {
        in_flight.retain(|(key, issued, pending)| match pending.poll() {
            Some(Ok(rank)) => {
                t.ok += 1;
                t.max_latency_ns = t.max_latency_ns.max(clock.now().saturating_sub(*issued));
                if verify {
                    let expect = keys.partition_point(|&k| k <= *key) as u32;
                    assert_eq!(rank, expect, "rank({key}) wrong over the simulated wire");
                    t.checks += 1;
                }
                false
            }
            Some(Err(ServeError::ShuttingDown)) => {
                t.shutdown += 1;
                false
            }
            Some(Err(ServeError::Overloaded { .. })) => {
                t.shed += 1;
                false
            }
            None => true,
        });
    };

    for _ in 0..n_lookups {
        at = arrivals.next_at_ns(at);
        let target = start.saturating_add(at);
        loop {
            reap(&mut in_flight, &mut t, &clock);
            let now = clock.now();
            if now >= target {
                break;
            }
            let remaining = target - now;
            let nap =
                if in_flight.is_empty() { remaining } else { remaining.min(dur_ns(REAP_CADENCE)) };
            clock.sleep(Duration::from_nanos(nap));
        }
        t.issued += 1;
        let key = keygen.next_key();
        match h.begin_lookup(key) {
            Ok(pending) => in_flight.push((key, clock.now(), pending)),
            Err(ServeError::Overloaded { .. }) => t.shed += 1,
            Err(ServeError::ShuttingDown) => t.shutdown += 1,
        }
    }
    // Drain: keep reaping on the cadence so tail latencies stay honest.
    while !in_flight.is_empty() {
        reap(&mut in_flight, &mut t, &clock);
        if !in_flight.is_empty() {
            clock.sleep(REAP_CADENCE);
        }
    }
    t
}

fn churn_gen(seed: u64) -> ChurnGen {
    ChurnGen::new(
        seed ^ NET_CHURN_SALT,
        KeyDistribution::Uniform,
        OpMix { query: 0.0, insert: 0.6, delete: 0.4 },
    )
}

fn churn_mirror(sc: &NetScenario, seed: u64, initial: &[u32]) -> BTreeSet<u32> {
    let mut set: BTreeSet<u32> = initial.iter().copied().collect();
    let mut gen = churn_gen(seed);
    for _ in 0..sc.churn_ops {
        match gen.next_op() {
            Op::Insert(k) => {
                set.insert(k);
            }
            Op::Delete(k) => {
                set.remove(&k);
            }
            Op::Query(_) => {}
        }
    }
    set
}

/// Spans whose every endpoint link is severed by the plan (excluded
/// from post-run probes; a span with one live endpoint keeps serving).
fn fully_severed_spans(sc: &NetScenario) -> Vec<usize> {
    (0..sc.spans)
        .filter(|&s| {
            (0..sc.endpoints_per_span).all(|e| {
                let flat = s * sc.endpoints_per_span + e;
                sc.link_down.iter().any(|&(ep, _)| ep == flat)
            })
        })
        .collect()
}

/// Run `sc` once under `seed`, enforce its oracles, and return the
/// deterministic [`NetReport`].
pub fn run_net_scenario(sc: &NetScenario, seed: u64) -> NetReport {
    let sim = SimClock::new();
    let _main = sim.register_main();
    let clock = Clock::sim(&sim);
    let net = ChanNet::new(clock.clone());

    let keys = Arc::new(gen_sorted_unique_keys(sc.n_keys, seed));

    // Client flight journal: a per-run scratch file under the OS temp
    // dir, removed before returning. Journal I/O is mmap stores that
    // never wait on the sim clock, so it cannot perturb the scheduling
    // digest.
    let flight_dir = sc.flight.then(|| {
        let run = FLIGHT_RUN.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "dini-simtest-flight-{}-{run}-{}",
            std::process::id(),
            sc.name
        ));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("[{}] flight scratch dir: {e}", sc.name));
        dir
    });
    let journal = flight_dir.as_ref().map(|d| {
        Arc::new(
            FlightJournal::open(&d.join("client.flt"), 4096)
                .unwrap_or_else(|e| panic!("[{}] client flight journal: {e}", sc.name)),
        )
    });

    // Topology: spans of near-equal population, replica endpoints named
    // span-major.
    let per = sc.n_keys / sc.spans;
    let spans: Vec<Span> = (0..sc.spans)
        .map(|s| Span {
            lo_key: if s == 0 { 0 } else { keys[s * per] },
            endpoints: (0..sc.endpoints_per_span).map(|e| format!("s{s}e{e}")).collect(),
        })
        .collect();
    let topology = Topology { spans };
    let parts = topology.split(&keys);

    // Link plans: every endpoint gets the scenario's fault envelope,
    // decorrelated by endpoint index; severed links get their instant.
    for s in 0..sc.spans {
        for e in 0..sc.endpoints_per_span {
            let flat = s * sc.endpoints_per_span + e;
            let mut fault = FaultPlan::none();
            fault.seed = seed ^ (flat as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
            fault.drop_prob = sc.drop_prob;
            fault.duplicate_prob = sc.duplicate_prob;
            fault.jitter_max_ns = dur_ns(sc.jitter_max) as f64;
            let mut plan =
                LinkPlan::reliable().with_latency_ns(dur_ns(sc.link_latency)).with_faults(fault);
            if let Some(&(_, at)) = sc.link_down.iter().find(|&&(ep, _)| ep == flat) {
                plan = plan.down_at(dur_ns(at));
            }
            if let Some(&(_, from, until)) = sc.blackout.iter().find(|&&(ep, _, _)| ep == flat) {
                plan = plan.blackout_ns(dur_ns(from), dur_ns(until));
            }
            net.set_link_plan(&format!("s{s}e{e}"), plan);
        }
    }

    // Server processes (sim-registered threads throughout).
    let mut servers = Vec::new();
    for (s, part) in parts.iter().enumerate() {
        for e in 0..sc.endpoints_per_span {
            let mut serve = ServeConfig::new(sc.shards_per_server);
            serve.slaves_per_shard = 1;
            serve.max_batch = 64;
            serve.max_delay = sc.server_max_delay;
            serve.clock = clock.clone();
            if sc.dense_tracing {
                serve.trace = dense_trace();
            }
            let acceptor = net.listen(&format!("s{s}e{e}"));
            servers.push(NetServer::start(
                Box::new(acceptor),
                part,
                NetServerConfig::new(serve, topology.clone(), s),
            ));
        }
    }

    // The client (bootstraps off span 0, endpoint 0).
    let ccfg = ClientConfig {
        clock: clock.clone(),
        max_batch: 64,
        max_delay: sc.client_max_delay,
        retry_timeout: sc.retry_timeout,
        max_retries: sc.max_retries,
        ctrl_timeout: Duration::from_millis(20),
        handshake_timeout: Duration::from_millis(20),
        trace: if sc.dense_tracing { dense_trace() } else { TraceConfig::default() },
        flight: journal.clone(),
        ..ClientConfig::default()
    };
    let client = RemoteClient::connect(net.dialer(), "s0e0", ccfg)
        .unwrap_or_else(|e| panic!("[{}] connect failed: {e}", sc.name));
    let handle = client.handle();

    // Concurrent churn through the wire (clean-link scenarios only).
    let churn_thread = (sc.churn_ops > 0).then(|| {
        let h = client.handle();
        let clock2 = clock.clone();
        let mut gen = churn_gen(seed);
        let (ops, gap) = (sc.churn_ops, sc.churn_gap);
        clock.spawn("net-churn", move || {
            for _ in 0..ops {
                clock2.sleep(gap);
                if h.update(gen.next_op()).is_err() {
                    break;
                }
            }
        })
    });

    // Wire introspection mid-load: a sim-registered poller fires
    // `StatsRequest`s at every live span while the probes hammer the
    // same sockets, asserting the counters only ever move forward.
    let severed_for_poller = fully_severed_spans(sc);
    let stats_thread = (sc.stats_polls > 0).then(|| {
        let h = client.handle();
        let clock2 = clock.clone();
        let (polls, gap, spans, name) = (sc.stats_polls, sc.stats_poll_gap, sc.spans, sc.name);
        clock.spawn("net-stats-poll", move || {
            let mut prev_served = vec![0u64; spans];
            let mut ok_polls = 0u64;
            for _ in 0..polls {
                clock2.sleep(gap);
                for (span, prev) in prev_served.iter_mut().enumerate() {
                    if severed_for_poller.contains(&span) {
                        continue;
                    }
                    let Ok(s) = h.span_stats(span) else { continue };
                    assert!(
                        s.served >= *prev,
                        "[{name}] span {span} served counter went backwards: \
                         {} then {}",
                        *prev,
                        s.served
                    );
                    assert!(
                        s.served <= s.admitted,
                        "[{name}] span {span} served {} ahead of admitted {}",
                        s.served,
                        s.admitted
                    );
                    *prev = s.served;
                    ok_polls += 1;
                }
            }
            ok_polls
        })
    });

    let verify_during = sc.churn_ops == 0;
    let probes: Vec<_> = (0..sc.clients)
        .map(|id| {
            let h = handle.clone();
            let keys = keys.clone();
            let (n, arrival) = (sc.lookups_per_client, sc.arrival);
            let seed_c = seed.wrapping_add(1 + id as u64);
            clock.spawn(&format!("net-probe-{id}"), move || {
                net_probe(h, keys, seed_c, n, arrival, verify_during)
            })
        })
        .collect();

    let mut issued = 0u64;
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut shutdown = 0u64;
    let mut oracle_checks = 0u64;
    let mut max_client_latency_ns = 0u64;
    for p in probes {
        let t = p.join().expect("net probe panicked");
        issued += t.issued;
        ok += t.ok;
        shed += t.shed;
        shutdown += t.shutdown;
        oracle_checks += t.checks;
        max_client_latency_ns = max_client_latency_ns.max(t.max_latency_ns);
    }
    if let Some(t) = churn_thread {
        t.join().expect("net churn panicked");
    }
    let stats_polls_ok = stats_thread.map_or(0, |t| t.join().expect("stats poller panicked"));

    // Oracle 1: reply completeness — exactly one resolution per lookup,
    // drops, duplicates, retries, and failover notwithstanding.
    assert_eq!(
        issued,
        ok + shed + shutdown,
        "[{}] lookups unaccounted for: issued {issued}, ok {ok}, shed {shed}, \
         shutdown {shutdown}",
        sc.name
    );

    // Oracle 2 (churn): post-quiesce sweep against the mirror — epoch
    // consistency across processes (base ranks refreshed by the acks).
    let severed = fully_severed_spans(sc);
    if sc.churn_ops > 0 {
        handle.quiesce().unwrap_or_else(|e| panic!("[{}] quiesce failed: {e:?}", sc.name));
        let mirror = churn_mirror(sc, seed, &keys);
        let mut probe_key = 0x9E37u32;
        for _ in 0..256 {
            probe_key = probe_key.wrapping_mul(2_654_435_761).wrapping_add(12_345);
            if severed.contains(&handle.span_of(probe_key)) {
                continue;
            }
            let expect = mirror.range(..=probe_key).count() as u32;
            assert_eq!(
                handle.lookup(probe_key),
                Ok(expect),
                "[{}] post-quiesce rank({probe_key}) diverged from the churn mirror",
                sc.name
            );
            oracle_checks += 1;
        }
        assert_eq!(
            handle.live_keys(),
            mirror.len() as u64,
            "[{}] live-key accounting diverged from the mirror",
            sc.name
        );

        // Replica convergence: after the barrier, every replica that
        // kept its link (blackouts heal; severed links do not) holds
        // exactly its span's slice of the mirror — set sizes match and
        // local ranks agree on a probe sweep. This is the oracle the
        // old fire-and-forget update path failed: one dropped Update
        // frame silently diverged a replica forever.
        for (flat, srv) in servers.iter().enumerate() {
            if sc.link_down.iter().any(|&(ep, _)| ep == flat) {
                continue;
            }
            let span = flat / sc.endpoints_per_span;
            let span_mirror: BTreeSet<u32> =
                mirror.iter().copied().filter(|&k| handle.span_of(k) == span).collect();
            assert_eq!(
                srv.server().len(),
                span_mirror.len(),
                "[{}] replica {flat} (span {span}) did not converge to the mirror's op set",
                sc.name
            );
            let local = srv.server().handle();
            let mut probe = 0x00C0_FFEEu32;
            for _ in 0..128 {
                probe = probe.wrapping_mul(2_654_435_761).wrapping_add(12_345);
                let expect = span_mirror.range(..=probe).count() as u32;
                assert_eq!(
                    local.lookup(probe),
                    Ok(expect),
                    "[{}] replica {flat} local rank({probe}) diverged from the mirror",
                    sc.name
                );
                oracle_checks += 1;
            }
        }
    }

    // Oracle 3: bounded virtual-time tails.
    if let Some(bound) = sc.latency_bound {
        assert!(
            max_client_latency_ns <= dur_ns(bound),
            "[{}] worst client-observed latency {max_client_latency_ns} ns exceeds the \
             virtual-time bound {} ns",
            sc.name,
            dur_ns(bound)
        );
    }

    // Oracle 5: wire-level introspection agrees with in-process truth.
    // With load drained, a final `StatsRequest` to each surviving
    // single-endpoint span must report exactly what that server's own
    // counters say (served settles once every reply is reaped).
    if sc.stats_polls > 0 && sc.endpoints_per_span == 1 {
        // One endpoint per span means the span-major flat index is the
        // span itself, so each poll names its process unambiguously.
        for (span, srv) in servers.iter().enumerate() {
            if severed.contains(&span) {
                continue;
            }
            let wire = handle
                .span_stats(span)
                .unwrap_or_else(|e| panic!("[{}] final stats poll failed: {e:?}", sc.name));
            let local = srv.server().stats();
            assert_eq!(
                wire.served, local.served,
                "[{}] span {span}: wire-polled served disagrees with the process",
                sc.name
            );
            assert_eq!(
                wire.live_keys,
                srv.server().len() as u64,
                "[{}] span {span}: wire-polled live_keys disagrees with the process",
                sc.name
            );
            oracle_checks += 1;
        }
    }

    let stats = client.stats();

    // Oracle 6 (dense tracing): the cross-process story. Every frame
    // carried a trace id, so the client's wire records and the servers'
    // stage records must stitch into causal timelines, each monotone on
    // virtual time — encoded before admitted, admitted before answered,
    // answered before acked. One shared virtual clock makes this an
    // exact ordering check, not a tolerance.
    let mut stitched_timelines = 0u64;
    if sc.dense_tracing {
        let client_recs = handle.wire_traces();
        let server_recs: Vec<StageRecord> =
            servers.iter().flat_map(|s| s.server().stage_traces()).collect();
        let timelines = stitch(&client_recs, &server_recs);
        assert!(
            !timelines.is_empty(),
            "[{}] dense tracing stitched no client↔server timeline \
             ({} client wire records, {} server stage records)",
            sc.name,
            client_recs.len(),
            server_recs.len()
        );
        for t in &timelines {
            assert!(
                t.monotone(),
                "[{}] stitched timeline for trace {:#x} is not monotone on virtual time",
                sc.name,
                t.trace
            );
            oracle_checks += 1;
        }
        stitched_timelines = timelines.len() as u64;
    }

    // Oracle 7 (flight): the journal's story matches the live counters
    // — every election and every update resend left exactly one record.
    let mut flight_events = 0u64;
    if let Some(j) = &journal {
        let events = j.events();
        flight_events = events.len() as u64;
        let count = |k: EventKind| events.iter().filter(|e| e.event() == Some(k)).count() as u64;
        assert_eq!(
            count(EventKind::Election),
            stats.elections,
            "[{}] journal election records disagree with the elections counter",
            sc.name
        );
        assert_eq!(
            count(EventKind::UpdateResend),
            stats.update_resends,
            "[{}] journal resend records disagree with the update_resends counter",
            sc.name
        );
        oracle_checks += 2;
    }

    let served_per_server: Vec<u64> = servers.iter().map(|s| s.server().stats().served).collect();
    let updates_applied: u64 = servers.iter().map(|s| s.server().stats().updates_applied).sum();

    let report = NetReport {
        digest: 0,
        events: 0,
        virtual_ns: 0,
        issued,
        ok,
        shed,
        shutdown,
        retries: stats.retries,
        rerouted: stats.rerouted,
        update_resends: stats.update_resends,
        elections: stats.elections,
        max_client_latency_ns,
        oracle_checks,
        served_per_server,
        updates_applied,
        stats_polls_ok,
        stitched_timelines,
        flight_events,
    };
    drop(handle);
    drop(client);
    for s in servers {
        s.shutdown();
    }
    if let Some(d) = &flight_dir {
        let _ = std::fs::remove_dir_all(d);
    }
    let (digest, events) = sim.digest();
    NetReport { digest, events, virtual_ns: sim.now(), ..report }
}

/// Run twice under the same seed and require identical reports —
/// totals *and* event-trace digest (the reproducibility contract).
pub fn run_net_scenario_reproducibly(sc: &NetScenario, seed: u64) -> NetReport {
    let a = run_net_scenario(sc, seed);
    let b = run_net_scenario(sc, seed);
    assert_eq!(
        a, b,
        "[{}] seed {seed} did not reproduce: wall-clock leaked into the simulated network",
        sc.name
    );
    a
}

// ---------------------------------------------------------------------------
// Crash-recovery scenarios: kill an endpoint mid-churn, restart it from
// its `dini-store` snapshot, replay the churn-log suffix, rejoin.

/// Monotone counter making each restart run's snapshot scratch
/// directory unique — the reproducibility wrapper runs the same seed
/// twice and the second run must not map the first run's checkpoints.
static RESTART_RUN: AtomicU64 = AtomicU64::new(0);

/// One deterministic crash-recovery scenario: a single span with two
/// replica endpoints under synchronous quorum-acked churn. Endpoint 1
/// is killed (process shutdown — crash-like: no parting checkpoint),
/// churn continues through the survivor (quorum degrades 2 → 1), then
/// the victim restarts by *mapping* its last snapshot, replays the
/// client-retained churn-log suffix past its recovered watermark, and
/// rejoins serving exact ranks.
#[derive(Debug, Clone)]
pub struct RestartScenario {
    /// Name (labels panics and reports).
    pub name: &'static str,
    /// Initial sorted key count (one span: every endpoint holds all).
    pub n_keys: usize,
    /// Shards inside each server process.
    pub shards_per_server: usize,
    /// Per-shard pending-delta threshold that triggers a merge cycle —
    /// and with a store plan, a checkpoint. Small → the storm itself
    /// checkpoints mid-churn; huge → only quiesce barriers checkpoint,
    /// leaving a deliberately stale snapshot behind.
    pub merge_threshold: usize,
    /// Quorum-acked churn ops before the kill.
    pub churn_before_kill: usize,
    /// Run a quiesce barrier (a guaranteed checkpoint on both
    /// endpoints) before killing. `false` leaves only merge-cycle
    /// checkpoints — the crash lands mid-storm.
    pub quiesce_before_kill: bool,
    /// Ops appended while the victim is down. They outrun its snapshot
    /// and must come back as a churn-log suffix replay at rejoin; keep
    /// below the client's `log_retention` (default 16 384).
    pub churn_while_dead: usize,
    /// Ops after the rejoin. Must be ≥ 1: each post-rejoin `Ok` needs a
    /// quorum of 2 again, so it proves the revived endpoint applied the
    /// whole replayed suffix *and* makes the final quiesce barrier
    /// provably cover it.
    pub churn_after_rejoin: usize,
    /// Fixed one-way link latency (both endpoints, reliable links).
    pub link_latency: Duration,
}

impl RestartScenario {
    /// A small, fast kill-and-recover baseline; override per test.
    pub fn base(name: &'static str) -> Self {
        Self {
            name,
            n_keys: 2_048,
            shards_per_server: 2,
            merge_threshold: 1 << 30,
            churn_before_kill: 200,
            quiesce_before_kill: true,
            churn_while_dead: 200,
            churn_after_rejoin: 100,
            link_latency: Duration::from_micros(50),
        }
    }
}

/// Deterministic outcome of one restart scenario; two same-seed runs
/// compare equal, digest included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartReport {
    /// FNV-1a fold of every scheduling event.
    pub digest: u64,
    /// Scheduling events folded into `digest`.
    pub events: u64,
    /// Virtual time the whole deployment consumed.
    pub virtual_ns: u64,
    /// The restart mapped a valid snapshot (no sort-rebuild fallback).
    pub recovered_from_snapshot: bool,
    /// The `(epoch, seq)` watermark the victim recovered at — its state
    /// folds exactly the churn-log prefix up to this point.
    pub recovered_watermark: (u64, u64),
    /// Churn-log seq at kill time (what the survivor had acked).
    pub seq_at_kill: u64,
    /// Churn-log epoch bumps the client observed (the kill is one).
    pub elections: u64,
    /// Churn-log suffixes resent to lagging endpoints (the rejoin
    /// catch-up rides this path).
    pub update_resends: u64,
    /// Exact-rank assertions performed.
    pub oracle_checks: u64,
    /// Live keys at the end (must equal the mirror's size).
    pub live_keys: u64,
    /// Events the victim's flight journal held at the kill, read cold
    /// off disk (its checkpoint subset is asserted against the victim's
    /// live counters; the restart must recover every one of them).
    pub flight_events_at_kill: u64,
}

/// Run `sc` once under `seed`, enforce its oracles, and return the
/// deterministic [`RestartReport`].
///
/// Snapshot files live in a per-run scratch directory under the OS
/// temp dir, removed before returning. File I/O happens on
/// sim-registered threads but never waits on the sim clock, so it
/// cannot perturb the scheduling digest.
pub fn run_restart_scenario(sc: &RestartScenario, seed: u64) -> RestartReport {
    let sim = SimClock::new();
    let _main = sim.register_main();
    let clock = Clock::sim(&sim);
    let net = ChanNet::new(clock.clone());

    let keys = Arc::new(gen_sorted_unique_keys(sc.n_keys, seed));
    let topology = Topology::single(vec!["s0e0".to_owned(), "s0e1".to_owned()]);

    let run = RESTART_RUN.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "dini-simtest-restart-{}-{run}-{}",
        std::process::id(),
        sc.name
    ));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("[{}] snapshot scratch dir: {e}", sc.name));

    for ep in ["s0e0", "s0e1"] {
        net.set_link_plan(ep, LinkPlan::reliable().with_latency_ns(dur_ns(sc.link_latency)));
    }

    let serve_cfg = |ep: &str| {
        let mut serve = ServeConfig::new(sc.shards_per_server);
        serve.slaves_per_shard = 1;
        serve.max_batch = 64;
        serve.max_delay = Duration::from_micros(200);
        serve.merge_threshold = sc.merge_threshold;
        serve.clock = clock.clone();
        serve.store = Some(StorePlan::new(dir.join(format!("{ep}.snap"))));
        // Every endpoint keeps a flight journal next to its snapshot.
        // The restart call below reopens the victim's — the same
        // crash-recovery path a real postmortem uses.
        serve.flight = Some(Arc::new(
            FlightJournal::open(&dir.join(format!("{ep}.flt")), 4096)
                .unwrap_or_else(|e| panic!("[{}] {ep} flight journal: {e}", sc.name)),
        ));
        serve
    };
    let survivor = NetServer::start(
        Box::new(net.listen("s0e0")),
        &keys,
        NetServerConfig::new(serve_cfg("s0e0"), topology.clone(), 0),
    );
    let mut victim = Some(NetServer::start(
        Box::new(net.listen("s0e1")),
        &keys,
        NetServerConfig::new(serve_cfg("s0e1"), topology.clone(), 0),
    ));

    // The client keeps its own journal: the kill must show up there as
    // an endpoint death plus a churn-log election, the rejoin as a
    // revival plus the catch-up resends.
    let client_journal = Arc::new(
        FlightJournal::open(&dir.join("client.flt"), 4096)
            .unwrap_or_else(|e| panic!("[{}] client flight journal: {e}", sc.name)),
    );
    let ccfg = ClientConfig {
        clock: clock.clone(),
        max_batch: 64,
        max_delay: Duration::from_micros(100),
        retry_timeout: Duration::from_millis(2),
        max_retries: 40,
        ctrl_timeout: Duration::from_millis(20),
        handshake_timeout: Duration::from_millis(20),
        flight: Some(client_journal.clone()),
        ..ClientConfig::default()
    };
    let client = RemoteClient::connect(net.dialer(), "s0e0", ccfg)
        .unwrap_or_else(|e| panic!("[{}] connect failed: {e}", sc.name));
    let handle = client.handle();

    // Synchronous churn: every op quorum-acked before the next, so the
    // runner-side mirror is exact at every instant.
    let mut gen = churn_gen(seed);
    let mut mirror: BTreeSet<u32> = keys.iter().copied().collect();
    let mut appended = 0u64;
    let mut oracle_checks = 0u64;
    let apply = |n: usize,
                 phase: &str,
                 handle: &NetHandle,
                 gen: &mut ChurnGen,
                 mirror: &mut BTreeSet<u32>,
                 appended: &mut u64| {
        for i in 0..n {
            let op = gen.next_op();
            handle
                .update(op)
                .unwrap_or_else(|e| panic!("[{}] {phase} op {i} failed: {e:?}", sc.name));
            *appended += 1;
            match op {
                Op::Insert(k) => {
                    mirror.insert(k);
                }
                Op::Delete(k) => {
                    mirror.remove(&k);
                }
                Op::Query(_) => {}
            }
        }
    };
    let sweep = |tag: &str, handle: &NetHandle, mirror: &BTreeSet<u32>, checks: &mut u64| {
        let mut probe = 0x9E37u32;
        for _ in 0..128 {
            probe = probe.wrapping_mul(2_654_435_761).wrapping_add(12_345);
            let expect = mirror.range(..=probe).count() as u32;
            assert_eq!(
                handle.lookup(probe),
                Ok(expect),
                "[{}] {tag} rank({probe}) diverged from the mirror",
                sc.name
            );
            *checks += 1;
        }
    };

    apply(sc.churn_before_kill, "pre-kill", &handle, &mut gen, &mut mirror, &mut appended);
    if sc.quiesce_before_kill {
        handle.quiesce().unwrap_or_else(|e| panic!("[{}] pre-kill quiesce failed: {e:?}", sc.name));
    }
    let seq_at_kill = appended;

    // Kill endpoint 1: crash-like process shutdown (the writer takes no
    // parting checkpoint — whatever quiesce or merge cycles persisted
    // is all the restart gets). Its live checkpoint counters are read
    // first: the flight journal on disk must tell the same story.
    let victim_srv = victim.as_ref().expect("victim alive");
    let victim_checkpoints = victim_srv.server().checkpoints();
    let victim_ck_failures = victim_srv.server().checkpoint_failures();
    victim.take().expect("victim alive").shutdown();

    // Oracle: the recorded crash story. Read cold off disk — the
    // postmortem path — the victim's journal must hold exactly one
    // `CheckpointOk` per counted checkpoint, one `CheckpointFail` per
    // counted failure, one `CheckpointBegin` per attempt, and every
    // completion must close a preceding `Begin` (one writer, so
    // sequence order is program order).
    let story = read_journal(&dir.join("s0e1.flt"))
        .unwrap_or_else(|e| panic!("[{}] victim journal unreadable after the kill: {e}", sc.name));
    let count = |k: EventKind| story.iter().filter(|e| e.event() == Some(k)).count() as u64;
    assert_eq!(
        count(EventKind::CheckpointOk),
        victim_checkpoints,
        "[{}] journal CheckpointOk records disagree with the victim's checkpoint counter",
        sc.name
    );
    assert_eq!(
        count(EventKind::CheckpointFail),
        victim_ck_failures,
        "[{}] journal CheckpointFail records disagree with the victim's failure counter",
        sc.name
    );
    assert_eq!(
        count(EventKind::CheckpointBegin),
        victim_checkpoints + victim_ck_failures,
        "[{}] every checkpoint attempt must open with exactly one Begin record",
        sc.name
    );
    let mut open_begin = false;
    for ev in &story {
        match ev.event() {
            Some(EventKind::CheckpointBegin) => {
                assert!(!open_begin, "[{}] nested CheckpointBegin in the journal", sc.name);
                open_begin = true;
            }
            Some(EventKind::CheckpointOk) | Some(EventKind::CheckpointFail) => {
                assert!(
                    open_begin,
                    "[{}] checkpoint completion with no open Begin in the journal",
                    sc.name
                );
                open_begin = false;
            }
            _ => {}
        }
    }
    oracle_checks += 3;
    let flight_events_at_kill = story.len() as u64;

    // Churn through the dead window: quorum degrades to the survivor
    // alone (live 1 → quorum 1), so every op still resolves `Ok` and
    // the mirror stays the exact acked state.
    apply(sc.churn_while_dead, "dead-window", &handle, &mut gen, &mut mirror, &mut appended);
    handle.quiesce().unwrap_or_else(|e| panic!("[{}] mid-dead quiesce failed: {e:?}", sc.name));
    sweep("mid-dead-window", &handle, &mirror, &mut oracle_checks);
    assert!(
        !handle.endpoint_alive("s0e1"),
        "[{}] the killed endpoint must read dead before the restart",
        sc.name
    );

    // Restart: re-listen on the victim's address (ChanNet replaces the
    // dead listener) and cold-start by *mapping* the snapshot — the
    // initial key set is only the sort-rebuild fallback and must not be
    // needed.
    let (revived_srv, degraded) = NetServer::restart(
        Box::new(net.listen("s0e1")),
        &keys,
        NetServerConfig::new(serve_cfg("s0e1"), topology.clone(), 0),
    );
    assert!(degraded.is_none(), "[{}] restart fell back to sort-rebuild: {degraded:?}", sc.name);
    let recovered_watermark = revived_srv.log_position();
    assert!(
        recovered_watermark.1 <= seq_at_kill,
        "[{}] recovered watermark seq {} is past the kill-time head {seq_at_kill}",
        sc.name,
        recovered_watermark.1
    );

    // Rejoin: dial, handshake, position the replay cursors at the
    // recovered watermark, then flip the endpoint live. The appender
    // ships the retained suffix from there.
    handle.rejoin("s0e1").unwrap_or_else(|e| panic!("[{}] rejoin failed: {e:?}", sc.name));
    let mut waited = 0u32;
    while !handle.endpoint_alive("s0e1") {
        waited += 1;
        assert!(waited < 5_000, "[{}] rejoin handshake never completed", sc.name);
        clock.sleep(Duration::from_millis(1));
    }

    // Post-rejoin churn: quorum is 2 again, so each `Ok` proves the
    // revived endpoint acked — and it acks in log order, so the first
    // one already certifies the whole replayed suffix applied.
    apply(sc.churn_after_rejoin, "post-rejoin", &handle, &mut gen, &mut mirror, &mut appended);

    // Catch-up barrier: flush holds until *every* live endpoint —
    // revived one included — acked the log head, then the per-endpoint
    // quiesce roundtrips publish merged epochs for exact wire ranks.
    handle.quiesce().unwrap_or_else(|e| panic!("[{}] final quiesce failed: {e:?}", sc.name));
    sweep("post-rejoin", &handle, &mirror, &mut oracle_checks);

    // Convergence: both *processes* hold exactly the mirror — the
    // survivor that never blinked and the victim that recovered via
    // snapshot map + suffix replay.
    for (name, srv) in [("survivor", &survivor), ("revived", &revived_srv)] {
        assert_eq!(
            srv.server().len(),
            mirror.len(),
            "[{}] the {name} process did not converge to the mirror's op set",
            sc.name
        );
        let local = srv.server().handle();
        let mut probe = 0x00C0_FFEEu32;
        for _ in 0..128 {
            probe = probe.wrapping_mul(2_654_435_761).wrapping_add(12_345);
            let expect = mirror.range(..=probe).count() as u32;
            assert_eq!(
                local.lookup(probe),
                Ok(expect),
                "[{}] {name} local rank({probe}) diverged from the mirror",
                sc.name
            );
            oracle_checks += 1;
        }
    }
    assert_eq!(
        handle.live_keys(),
        mirror.len() as u64,
        "[{}] live-key accounting diverged from the mirror",
        sc.name
    );

    // The revived endpoint reopened the same journal file: recovery
    // must have kept the whole pre-kill story and appended past it
    // (post-rejoin churn checkpoints on the final quiesce barrier).
    let revived_story = read_journal(&dir.join("s0e1.flt"))
        .unwrap_or_else(|e| panic!("[{}] revived journal unreadable: {e}", sc.name));
    assert!(
        revived_story.len() > story.len(),
        "[{}] the revived journal must recover the {} pre-kill events and append new ones \
         (found {})",
        sc.name,
        story.len(),
        revived_story.len()
    );
    oracle_checks += 1;

    let stats = client.stats();

    // The client's own journal agrees with its counters: the kill is
    // recorded as an endpoint death and exactly `elections` epoch
    // bumps; the rejoin as a revival and exactly `update_resends`
    // catch-up suffix resends.
    let cstory = client_journal.events();
    let ccount = |k: EventKind| cstory.iter().filter(|e| e.event() == Some(k)).count() as u64;
    assert_eq!(
        ccount(EventKind::Election),
        stats.elections,
        "[{}] client journal election records disagree with the elections counter",
        sc.name
    );
    assert_eq!(
        ccount(EventKind::UpdateResend),
        stats.update_resends,
        "[{}] client journal resend records disagree with the update_resends counter",
        sc.name
    );
    assert!(
        ccount(EventKind::EndpointDead) >= 1,
        "[{}] the kill never reached the client journal as an EndpointDead record",
        sc.name
    );
    assert!(
        ccount(EventKind::EndpointRejoin) >= 1,
        "[{}] the rejoin never reached the client journal as an EndpointRejoin record",
        sc.name
    );
    oracle_checks += 4;

    let report = RestartReport {
        digest: 0,
        events: 0,
        virtual_ns: 0,
        recovered_from_snapshot: degraded.is_none(),
        recovered_watermark,
        seq_at_kill,
        elections: stats.elections,
        update_resends: stats.update_resends,
        oracle_checks,
        live_keys: handle.live_keys(),
        flight_events_at_kill,
    };
    drop(handle);
    drop(client);
    survivor.shutdown();
    revived_srv.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let (digest, events) = sim.digest();
    RestartReport { digest, events, virtual_ns: sim.now(), ..report }
}

/// Run twice under the same seed and require identical reports —
/// totals *and* event-trace digest. Crash recovery must be as replayable
/// as everything else: the kill, the snapshot map, the suffix replay,
/// and the rejoin all fold into the same deterministic event trace.
pub fn run_restart_scenario_reproducibly(sc: &RestartScenario, seed: u64) -> RestartReport {
    let a = run_restart_scenario(sc, seed);
    let b = run_restart_scenario(sc, seed);
    assert_eq!(
        a, b,
        "[{}] seed {seed} did not reproduce: wall-clock (or leftover snapshot state) \
         leaked into the crash-recovery path",
        sc.name
    );
    a
}
