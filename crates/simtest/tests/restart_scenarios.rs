//! Crash-recovery scenarios on deterministic virtual time: kill one
//! endpoint of a replicated span mid-churn, restart it from its
//! `dini-store` snapshot, replay the client-retained churn-log suffix
//! past the recovered watermark, and rejoin serving exact ranks.
//!
//! Every scenario runs digest-pinned (twice per seed, reports must be
//! identical) across the `DINI_SIMTEST_SEEDS` seed sweep, and every run
//! enforces the full oracle set inside `run_restart_scenario`: all
//! churn ops quorum-acked `Ok` through the kill and recovery, wire
//! ranks against a runner-side `BTreeSet` mirror mid-dead-window and
//! post-rejoin, both server *processes* converged to the mirror
//! (set sizes and local rank sweeps), and live-key accounting exact.
//!
//! Every endpoint (and the client) also keeps a `dini-flight` journal:
//! after the kill the victim's is read cold off disk and its recorded
//! checkpoint story must match the victim's live counters exactly (one
//! `Begin` per attempt, `Ok`/`Fail` pairing each `Begin` in sequence
//! order); the restart reopens — recovers — the same journal and must
//! append past the pre-kill story; and the client's journal must agree
//! with its election/resend counters and show the death and rejoin.

use dini_simtest::{run_restart_scenario_reproducibly, seeds_from_env, RestartScenario};

/// The headline recovery path: a checkpoint exists (the pre-kill
/// quiesce barrier guarantees one on both endpoints), the victim is
/// killed mid-churn, 300 ops land while it is down, and the restart
/// must map the snapshot — no sort-rebuild — then replay exactly the
/// suffix past its watermark and mirror the survivor key-for-key.
#[test]
fn kill_span_mid_churn_restart_mirrors_exactly() {
    let mut sc = RestartScenario::base("kill-span-mid-churn");
    sc.churn_before_kill = 250;
    sc.churn_while_dead = 300;
    sc.churn_after_rejoin = 120;
    for seed in seeds_from_env() {
        let r = run_restart_scenario_reproducibly(&sc, seed);
        assert!(r.recovered_from_snapshot, "seed {seed}: restart must map, not rebuild");
        assert!(
            r.elections >= 1,
            "seed {seed}: the kill must bump the churn-log epoch, got {}",
            r.elections
        );
        // The quiesce before the kill checkpointed at the acked head,
        // so the recovered watermark is exactly the kill-time seq: the
        // replay suffix is precisely the dead-window ops.
        assert_eq!(
            r.recovered_watermark.1, r.seq_at_kill,
            "seed {seed}: a post-quiesce checkpoint must carry the kill-time watermark"
        );
        assert!(r.oracle_checks >= 512, "seed {seed}: sweeps must have run");
        // The pre-kill quiesce checkpointed, so the journal the restart
        // recovered must already have held that story at the kill.
        assert!(
            r.flight_events_at_kill >= 2,
            "seed {seed}: the pre-kill checkpoint must have left Begin+Ok in the journal ({r:?})"
        );
    }
}

/// Crash mid-storm with *no* quiesce before the kill: the only
/// checkpoints are the ones the merge cycle itself wrote (threshold 16,
/// checkpoint every merge), so the snapshot the restart maps was taken
/// mid-churn at some batch boundary — the watermark is conservative and
/// the replay suffix overlaps ops already folded into the mapped state.
/// Idempotent replay must absorb the overlap without double-applying.
/// (The churn generator deletes keys it inserted, so pending deltas
/// mostly cancel: net delta growth is ~0.1 ops/shard, and 500 ops at
/// threshold 16 crosses the merge trigger with wide margin.)
#[test]
fn snapshot_mid_churn_storm_recovers_from_merge_checkpoint() {
    let mut sc = RestartScenario::base("snapshot-mid-churn-storm");
    sc.merge_threshold = 16;
    sc.quiesce_before_kill = false;
    sc.churn_before_kill = 500;
    sc.churn_while_dead = 250;
    sc.churn_after_rejoin = 120;
    for seed in seeds_from_env() {
        let r = run_restart_scenario_reproducibly(&sc, seed);
        assert!(
            r.recovered_from_snapshot,
            "seed {seed}: 500 pre-kill ops across 2 shards at threshold 16 must have \
             merge-checkpointed; the restart must map that snapshot"
        );
        assert!(
            r.recovered_watermark.1 > 0,
            "seed {seed}: a mid-storm checkpoint folds a nonempty log prefix"
        );
        assert!(r.elections >= 1, "seed {seed}: the kill must bump the epoch");
    }
}

/// Deliberately stale snapshot, long replay: the merge threshold is
/// unreachable, so the *only* checkpoint is the early quiesce barrier —
/// taken before most of the churn. The dead window then piles 600 more
/// ops on top (well inside the client's 16 384-record retention). The
/// restart maps a snapshot far behind the log head and recovery is
/// carried almost entirely by the suffix replay.
#[test]
fn stale_snapshot_recovers_via_long_log_replay() {
    let mut sc = RestartScenario::base("stale-snapshot-log-replay");
    sc.merge_threshold = 1 << 30;
    sc.churn_before_kill = 60;
    sc.quiesce_before_kill = true;
    sc.churn_while_dead = 600;
    sc.churn_after_rejoin = 150;
    for seed in seeds_from_env() {
        let r = run_restart_scenario_reproducibly(&sc, seed);
        assert!(r.recovered_from_snapshot, "seed {seed}: the stale snapshot must still map");
        // The watermark sits at the early barrier; everything after —
        // the 600-op dead window — must have come back as log replay.
        assert_eq!(
            r.recovered_watermark.1, r.seq_at_kill,
            "seed {seed}: the quiesce checkpoint carries the pre-kill head"
        );
        assert!(
            r.live_keys > 0,
            "seed {seed}: the span must be serving a nonempty key set after recovery"
        );
    }
}
