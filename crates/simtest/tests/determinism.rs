//! Determinism of the simulation itself — the property every scenario
//! leans on, tested directly so a wall-clock leak (an `Instant::now()`
//! or raw `thread::sleep` creeping back into a sim-clocked path) fails
//! here first, with a clear name.

use dini_simtest::{run_scenario, Report, Scenario};
use dini_workload::ArrivalProcess;
use std::collections::HashSet;
use std::time::Duration;

/// A scenario that exercises every subsystem at once (churn + merges +
/// publication + mid-run quiesce + multiple clients): the widest surface
/// a nondeterminism bug could hide in.
fn busy_scenario() -> Scenario {
    let mut sc = Scenario::base("determinism-busy");
    sc.churn_ops = 800;
    sc.churn_gap = Duration::from_micros(10);
    sc.merge_threshold = 64;
    sc.publish_every = 8;
    sc.quiesce_mid_run = true;
    sc.arrival = ArrivalProcess::poisson_rate(15_000.0);
    sc.latency_bound = Some(Duration::from_micros(250));
    sc
}

#[test]
fn same_seed_byte_identical_reports() {
    let sc = busy_scenario();
    for seed in [0u64, 7, 42] {
        let a = run_scenario(&sc, seed);
        let b = run_scenario(&sc, seed);
        assert_eq!(a, b, "seed {seed}: rerun diverged — wall clock leaked into the sim path");
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert_eq!(a.virtual_ns, b.virtual_ns);
    }
}

#[test]
fn distinct_seeds_distinct_interleavings() {
    let sc = busy_scenario();
    let reports: Vec<Report> = (0..4).map(|seed| run_scenario(&sc, seed)).collect();
    let digests: HashSet<u64> = reports.iter().map(|r| r.digest).collect();
    assert_eq!(
        digests.len(),
        reports.len(),
        "seeds must produce distinct event traces; a collision here means the seed is \
         not actually reaching the workload"
    );
    // Seeds must differ in *behaviour*, not just in hash: virtual
    // makespans depend on the seeded arrival gaps.
    let makespans: HashSet<u64> = reports.iter().map(|r| r.virtual_ns).collect();
    assert!(makespans.len() > 1, "all seeds produced identical virtual makespans");
}

#[test]
fn virtual_time_outruns_wall_clock() {
    // ~72 virtual ms of open-loop load (sparse arrivals, long idle
    // gaps) must complete orders of magnitude faster in wall-clock:
    // the sim fast-forwards idle waits instead of sleeping them.
    let mut sc = Scenario::base("determinism-fastforward");
    sc.arrival = ArrivalProcess::poisson_rate(700.0); // sparse: mostly idle
    sc.lookups_per_client = 50;
    let wall = std::time::Instant::now();
    let report = run_scenario(&sc, 5);
    let wall = wall.elapsed();
    assert!(
        report.virtual_ns > 30_000_000,
        "sparse arrivals should span tens of virtual ms, got {} ns",
        report.virtual_ns
    );
    assert!(
        wall < Duration::from_secs(10),
        "virtual idle time must not be slept in wall-clock (took {wall:?})"
    );
}
