//! The seeded fault-scenario suite: the real `IndexServer` under nine
//! hostile (and one clean) schedules, on deterministic virtual time.
//!
//! Every scenario runs across the seed matrix (`DINI_SIMTEST_SEEDS`,
//! default 3, CI 8) and **twice per seed** via
//! [`run_scenario_reproducibly`], which asserts the two runs agree on
//! every counter *and* on the scheduler's event-trace digest — the
//! reproducibility contract that makes any failure replayable from its
//! seed. Wall-clock cost stays in seconds because idle waits
//! fast-forward in virtual time.

use dini_serve::ServeFaultPlan;
use dini_simtest::{run_scenario_reproducibly, seeds_from_env, Scenario};
use dini_workload::ArrivalProcess;
use std::time::Duration;

/// Clean quiesce: churn + lookups + a mid-run quiesce, no faults. The
/// post-quiesce sweep must match the churn mirror exactly, and snapshot
/// publication must be live.
#[test]
fn clean_quiesce() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("clean_quiesce");
        sc.churn_ops = 600;
        sc.churn_gap = Duration::from_micros(20);
        sc.quiesce_mid_run = true;
        sc.latency_bound = Some(Duration::from_micros(250));
        let report = run_scenario_reproducibly(&sc, seed);
        assert_eq!(report.issued, report.ok, "no faults: every lookup must answer (seed {seed})");
        assert_eq!(report.shutdown, 0);
        assert_eq!(report.shed, 0);
        assert!(report.snapshots >= 2, "quiesce + churn must publish snapshots");
        assert!(report.updates_applied > 0);
        assert!(report.oracle_checks > 0, "post-quiesce sweep must check ranks");
    }
}

/// A shard dispatcher crashes mid-batch while traffic is in flight: its
/// collected batch is dropped and every waiter gets `ShuttingDown` — no
/// reply is ever lost — while the surviving shards keep answering
/// exactly.
#[test]
fn shard_crash_mid_batch() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("shard_crash_mid_batch");
        // Crash shard 1 at 3 virtual ms — squarely inside the ~20 ms
        // load window, so requests are queued and coalescing when it
        // dies.
        sc.faults = ServeFaultPlan::none().crash_shard(1, 3_000_000);
        sc.latency_bound = Some(Duration::from_micros(250));
        let report = run_scenario_reproducibly(&sc, seed);
        assert!(report.shutdown > 0, "seed {seed}: the crash window must catch in-flight lookups");
        assert!(report.ok > 0, "surviving shards keep serving");
        assert_eq!(report.issued, report.ok + report.shed + report.shutdown);
    }
}

/// Regression: a crash with a *deep backlog* behind it. With one slow
/// single-request-batch shard, requests pile up in the admission queue;
/// when the crash fires, everything queued (not just the collected
/// batch) must resolve as `ShuttingDown` — the crashed dispatcher
/// drains its queue rather than stranding waiters whose own
/// `ServerHandle`s keep the channel alive. Before the drain existed,
/// this scenario deadlocked (caught by the sim's detector).
#[test]
fn shard_crash_with_queued_backlog() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("shard_crash_with_queued_backlog");
        sc.shards = 1;
        sc.max_batch = 1;
        sc.faults = ServeFaultPlan::none()
            .slow_shard(0, Duration::from_millis(1))
            .crash_shard(0, 2_000_000);
        sc.clients = 3;
        sc.lookups_per_client = 150;
        sc.latency_bound = None; // the backlog *is* the scenario
        let report = run_scenario_reproducibly(&sc, seed);
        assert!(report.shutdown > 0, "seed {seed}: the backlog must be shut down, not lost");
        assert_eq!(report.issued, report.ok + report.shed + report.shutdown);
    }
}

/// The failover tentpole: one replica of a shard crashes **mid-batch**
/// while traffic is in flight, and — unlike the single-dispatcher crash
/// above — not a single request may resolve to `ShuttingDown`: the
/// crashed replica's collected batch and queued backlog are re-routed
/// to its surviving sibling, and (the key set being static) every
/// re-routed reply is still verified exact on the spot. The request
/// stream sees degraded capacity, never errors.
#[test]
fn replica_crash_mid_batch() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("replica_crash_mid_batch");
        sc.replicas_per_shard = 2;
        // Crash replica 0 of shard 1 at 3 virtual ms — squarely inside
        // the ~20 ms load window, so requests are queued and coalescing
        // on the dying replica.
        sc.faults = ServeFaultPlan::none().crash_replica(1, 0, 3_000_000);
        // Re-homed requests ride one extra coalescing window on the
        // survivor; anything slower than a handful of max_delays would
        // mean the backlog sat un-drained.
        sc.latency_bound = Some(5 * sc.max_delay);
        let report = run_scenario_reproducibly(&sc, seed);
        assert_eq!(
            report.shutdown, 0,
            "seed {seed}: a crash with a surviving replica must never surface ShuttingDown"
        );
        assert_eq!(report.shed, 0);
        assert_eq!(
            report.issued, report.ok,
            "seed {seed}: every issued lookup must be answered (re-routed, not dropped)"
        );
        assert!(
            report.rerouted > 0,
            "seed {seed}: the mid-batch crash must actually re-route its backlog"
        );
        // The dead replica of shard 1 stops serving; its sibling keeps
        // the shard alive.
        let dead = report.per_replica_served[2]; // shard 1, replica 0
        let survivor = report.per_replica_served[3]; // shard 1, replica 1
        assert!(survivor > dead, "failover must shift shard 1's load to the survivor");
    }
}

/// A straggler **replica**: one replica of shard 0 pays +2 ms per batch
/// while its sibling stays fast. Power-of-two-choices routing sees the
/// straggler's queue depth and steers around it, so (a) the healthy
/// replica serves the bulk of the shard's traffic and (b) the worst
/// served latency stays a small multiple of the injected delay — the
/// straggler delays the few requests that tie-break onto it, but its
/// backlog can never compound the way a load-blind router's would.
#[test]
fn straggler_replica_with_bounded_tail() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("straggler_replica_with_bounded_tail");
        sc.replicas_per_shard = 2;
        let extra = Duration::from_millis(2);
        sc.faults = ServeFaultPlan::none().slow_replica(0, 0, extra);
        sc.arrival = ArrivalProcess::poisson_rate(4_000.0);
        // A request can land on the straggler just as a slow batch
        // departs and then ride its own: ≤ max_delay + 2 × extra. The
        // healthy replica's own traffic stays under max_delay, which is
        // what keeps the *shard's* tail bounded by the straggler's
        // single-batch delay instead of its queue length.
        sc.latency_bound = Some(sc.max_delay + 2 * extra);
        let report = run_scenario_reproducibly(&sc, seed);
        assert_eq!(report.issued, report.ok, "a straggler is slow, not wrong (seed {seed})");
        assert_eq!(report.rerouted, 0, "nothing crashes here");
        let straggler = report.per_replica_served[0]; // shard 0, replica 0
        let healthy = report.per_replica_served[1]; // shard 0, replica 1
        assert!(
            healthy > straggler,
            "seed {seed}: depth-aware routing must steer shard 0's load to the healthy \
             replica (straggler {straggler}, healthy {healthy})"
        );
    }
}

/// Every replica of a shard goes down (staggered): the first crash
/// fails over to the second replica, and only when the *last* replica
/// dies does the shard report `ShuttingDown` — degraded capacity first,
/// errors only at total loss. Surviving shards never miss a beat.
#[test]
fn all_replicas_down_is_shutdown() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("all_replicas_down_is_shutdown");
        sc.replicas_per_shard = 2;
        sc.faults =
            ServeFaultPlan::none().crash_replica(1, 0, 2_000_000).crash_replica(1, 1, 6_000_000);
        sc.latency_bound = None; // the second crash can strand re-homed backlog mid-wait
        let report = run_scenario_reproducibly(&sc, seed);
        assert!(
            report.rerouted > 0,
            "seed {seed}: the first crash must fail over while its sibling lives"
        );
        assert!(
            report.shutdown > 0,
            "seed {seed}: after the last replica dies the shard must say so"
        );
        assert!(report.ok > 0, "surviving shards keep serving");
        assert_eq!(report.issued, report.ok + report.shed + report.shutdown);
    }
}

/// Seeded uniform jitter on every dispatch: answers stay exact, and the
/// worst served latency stays below `max_delay + 2 × jitter_max` — a
/// bound that only holds because delays are virtual and scripted.
#[test]
fn dispatch_jitter() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("dispatch_jitter");
        let jitter = Duration::from_micros(400);
        sc.faults = ServeFaultPlan::none().with_jitter(seed ^ 0x4A17_7E55, jitter);
        sc.arrival = ArrivalProcess::poisson_rate(5_000.0);
        sc.latency_bound = Some(sc.max_delay + 2 * jitter);
        let report = run_scenario_reproducibly(&sc, seed);
        assert_eq!(report.issued, report.ok, "jitter delays, never drops (seed {seed})");
        assert!(report.max_latency_ns > 0);
    }
}

/// One shard is a straggler (+2 ms per batch): its traffic is slow but
/// exact, the other shards stay fast, and nothing sheds because the
/// queue absorbs the straggler's backlog.
#[test]
fn slow_shard_straggler() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("slow_shard_straggler");
        let extra = Duration::from_millis(2);
        sc.faults = ServeFaultPlan::none().slow_shard(0, extra);
        sc.arrival = ArrivalProcess::poisson_rate(4_000.0);
        // A request can land behind one in-flight slow batch and then
        // ride its own: ≤ max_delay + 2 × extra, exactly, in virtual
        // time.
        sc.latency_bound = Some(sc.max_delay + 2 * extra);
        let report = run_scenario_reproducibly(&sc, seed);
        assert_eq!(report.issued, report.ok, "straggler is slow, not wrong (seed {seed})");
        assert!(
            report.max_latency_ns > extra.as_nanos() as u64,
            "the straggler's delay must actually be visible in served latency"
        );
    }
}

/// A churn storm with an aggressive merge threshold and per-op snapshot
/// publication: epoch swaps and index rebuilds race live lookups, and
/// the post-quiesce sweep must still match the mirror exactly.
#[test]
fn churn_storm_during_snapshot_publish() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("churn_storm_during_snapshot_publish");
        sc.churn_ops = 1_500;
        sc.churn_gap = Duration::from_micros(5); // storm
        sc.merge_threshold = 48; // force frequent merges/rebuilds
        sc.publish_every = 4; // publication storm
        sc.latency_bound = Some(Duration::from_micros(250));
        let report = run_scenario_reproducibly(&sc, seed);
        assert!(report.merges > 0, "seed {seed}: the storm must cross the merge threshold");
        assert!(report.snapshots > 20, "publication storm must publish constantly");
        assert_eq!(report.issued, report.ok);
        assert!(report.oracle_checks > 0);
    }
}

/// Stage-timing observability on virtual time: dense tracing (every
/// served request sampled) under a clean schedule. Oracle 5 inside the
/// runner already asserts each record advances monotonically through
/// admitted → collected → dispatched → answered → filled and honours
/// the latency bound; here we pin that dense sampling actually retains
/// records, that the count reproduces bit-for-bit across the digest
/// contract, and that sparser sampling considers the same traffic while
/// recording less.
#[test]
fn stage_traces_on_virtual_time() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("stage_traces_on_virtual_time");
        sc.trace_sample_period = 1; // dense: every request sampled
        sc.latency_bound = Some(Duration::from_micros(250));
        let dense = run_scenario_reproducibly(&sc, seed);
        assert_eq!(dense.issued, dense.ok, "tracing must not perturb correctness (seed {seed})");
        assert!(
            dense.trace_records > 0,
            "seed {seed}: dense sampling over {} served queries recorded nothing",
            dense.served
        );

        sc.name = "stage_traces_sparse";
        sc.trace_sample_period = 64;
        let sparse = run_scenario_reproducibly(&sc, seed);
        assert!(
            sparse.trace_records < dense.trace_records,
            "seed {seed}: 1-in-64 sampling must retain fewer records than dense \
             ({} vs {})",
            sparse.trace_records,
            dense.trace_records
        );

        sc.name = "stage_traces_disabled";
        sc.trace_sample_period = 0;
        let off = run_scenario_reproducibly(&sc, seed);
        assert_eq!(off.trace_records, 0, "seed {seed}: disabled tracing must record nothing");
        assert_eq!(off.issued, off.ok);
    }
}

/// Sustained overload into shed: dispatch is artificially slow (virtual
/// service time) and the queues are tiny, so open-loop arrivals overrun
/// admission and the server sheds — deterministically, the same requests
/// every run.
#[test]
fn overload_to_shed() {
    for seed in seeds_from_env() {
        let mut sc = Scenario::base("overload_to_shed");
        // Every batch costs 1 virtual ms to dispatch; arrivals offered
        // at 20k/s/client against queues of 4 → guaranteed overrun.
        sc.faults = ServeFaultPlan::none()
            .slow_shard(0, Duration::from_millis(1))
            .slow_shard(1, Duration::from_millis(1))
            .slow_shard(2, Duration::from_millis(1));
        sc.queue_capacity = 4;
        sc.max_batch = 4;
        sc.lookups_per_client = 300;
        sc.latency_bound = None; // queueing delay is the point here
        let report = run_scenario_reproducibly(&sc, seed);
        assert!(report.shed > 0, "seed {seed}: overload must shed");
        assert!(report.ok > 0, "admitted traffic is still served");
        assert_eq!(report.issued, report.ok + report.shed + report.shutdown);
    }
}
