//! Seeded network-fault scenarios over the simulated transport: whole
//! multi-process deployments (NetServers × spans × replica endpoints, a
//! RemoteClient, lossy/jittered/severable links) on deterministic
//! virtual time, swept across the `DINI_SIMTEST_SEEDS` matrix with
//! every run executed twice to pin the event-trace digest.

use dini_simtest::{run_net_scenario_reproducibly, seeds_from_env, NetScenario};
use std::time::Duration;

#[test]
fn clean_two_span_deployment_is_exact_and_bounded() {
    // Baseline: two server processes, no faults, fixed 50 µs links.
    // Every rank is verified at reap time, and the end-to-end tail is
    // bounded by coalescing (client 100 µs + server 200 µs) + two link
    // crossings + the probe's 100 µs reap cadence.
    let mut sc = NetScenario::base("net-clean-two-spans");
    sc.latency_bound = Some(Duration::from_micros(700));
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.issued, 2 * 300);
        assert_eq!(r.ok, r.issued, "fault-free: every lookup answers");
        assert_eq!((r.shed, r.shutdown, r.retries, r.rerouted), (0, 0, 0, 0));
        assert_eq!(r.oracle_checks, r.ok, "every rank verified");
        assert!(r.served_per_server.iter().all(|&s| s > 0), "both spans served traffic");
        assert!(r.virtual_ns > 0);
    }
}

#[test]
fn frame_drops_with_retry_lose_and_duplicate_nothing() {
    // 5 % of frames vanish and 5 % are delivered twice, in both
    // directions. The client's retry (same request id) recovers the
    // losses; the in-flight map and generation-tagged reply cells drop
    // the duplicates. Exactly one resolution per lookup, every rank
    // exact.
    let mut sc = NetScenario::base("net-frame-drop-retry");
    sc.spans = 1;
    sc.shards_per_server = 2;
    sc.link_latency = Duration::from_micros(20);
    sc.drop_prob = 0.05;
    sc.duplicate_prob = 0.05;
    sc.retry_timeout = Duration::from_millis(2);
    sc.max_retries = 40;
    sc.latency_bound = None; // tails legitimately include retry timeouts
    let mut total_retries = 0u64;
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.ok, r.issued, "drops must be repaired, not surfaced: {r:?}");
        assert_eq!((r.shed, r.shutdown), (0, 0));
        assert_eq!(r.oracle_checks, r.ok, "every recovered rank verified exact");
        total_retries += r.retries;
    }
    assert!(total_retries > 0, "a 5% drop rate must force at least one retry across the matrix");
}

#[test]
fn endpoint_crash_fails_over_to_replica_endpoint() {
    // One span, two replica endpoints. Endpoint 0's link is severed
    // mid-run (the network view of a server crash): the client re-homes
    // everything in flight and keeps answering through endpoint 1 —
    // degraded capacity, never errors, never a wrong rank.
    let mut sc = NetScenario::base("net-endpoint-crash-failover");
    sc.spans = 1;
    sc.endpoints_per_span = 2;
    sc.shards_per_server = 2;
    sc.lookups_per_client = 400;
    sc.link_down = vec![(0, Duration::from_millis(3))];
    sc.latency_bound = None; // failover re-homing can stretch a tail
    let mut total_rerouted = 0u64;
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.ok, r.issued, "failover must hide the crash: {r:?}");
        assert_eq!((r.shed, r.shutdown), (0, 0), "a surviving replica means no errors");
        assert_eq!(r.oracle_checks, r.ok);
        assert!(
            r.served_per_server[1] > 0,
            "the surviving endpoint must carry traffic: {:?}",
            r.served_per_server
        );
        total_rerouted += r.rerouted;
    }
    assert!(
        total_rerouted > 0,
        "a mid-run link severance must re-home in-flight lookups somewhere in the matrix"
    );
}

#[test]
fn jittered_links_keep_virtual_time_tails_bounded() {
    // Per-frame jitter up to 300 µs (which also reorders frames on the
    // wire). Request-id matching absorbs the reordering, and the worst
    // client-observed latency stays under coalescing + two worst-case
    // link crossings + the reap cadence.
    let mut sc = NetScenario::base("net-jittered-links");
    sc.spans = 1;
    sc.shards_per_server = 2;
    sc.link_latency = Duration::from_micros(20);
    sc.jitter_max = Duration::from_micros(300);
    // client 100 + server 200 + 2×(20+300) + reap 100 = 1040 µs; margin.
    sc.latency_bound = Some(Duration::from_micros(1200));
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.ok, r.issued, "jitter delays, it must not lose: {r:?}");
        assert_eq!((r.shed, r.shutdown, r.retries), (0, 0, 0));
        assert_eq!(r.oracle_checks, r.ok);
    }
}

#[test]
fn churn_stays_epoch_consistent_across_processes() {
    // Two server processes, churn streamed through the wire to the span
    // owning each key. After a quiesce round trip the client's
    // cross-span base ranks must recompose exactly: a post-quiesce
    // sweep against the BTreeSet mirror, plus live-key accounting.
    let mut sc = NetScenario::base("net-epoch-consistency");
    sc.churn_ops = 300;
    sc.churn_gap = Duration::from_micros(40);
    sc.latency_bound = None; // server-side quiesce stalls its connection
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.issued, r.ok + r.shed + r.shutdown);
        assert_eq!((r.shed, r.shutdown), (0, 0));
        assert!(r.updates_applied > 0, "churn must mutate the indexes");
        assert!(r.oracle_checks >= 200, "the post-quiesce sweep must actually probe");
    }
}

#[test]
fn lossy_links_cannot_diverge_replicas_thanks_to_the_quorum_log() {
    // One span, two replica endpoints, 5 % frame drops and 5 %
    // duplicates in both directions, churn streamed through the wire.
    // Every update is a sequence-numbered churn-log record: a dropped
    // Update frame is repaired by suffix resend, a duplicated one is
    // ignored by the replica's in-order cursor, and the client's Ok
    // only fires once both endpoints acked. The runner's convergence
    // oracle then checks both replicas against the BTreeSet mirror —
    // the check the old fire-and-forget broadcast failed.
    let mut sc = NetScenario::base("net-lossy-update-quorum");
    sc.spans = 1;
    sc.endpoints_per_span = 2;
    sc.shards_per_server = 2;
    sc.link_latency = Duration::from_micros(20);
    sc.drop_prob = 0.05;
    sc.duplicate_prob = 0.05;
    sc.retry_timeout = Duration::from_millis(2);
    sc.max_retries = 40;
    sc.churn_ops = 300;
    sc.churn_gap = Duration::from_micros(40);
    sc.latency_bound = None; // tails legitimately include retry timeouts
    let mut total_resends = 0u64;
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.ok, r.issued, "drops must be repaired, not surfaced: {r:?}");
        assert_eq!((r.shed, r.shutdown), (0, 0));
        assert!(r.updates_applied > 0, "churn must mutate the indexes");
        assert_eq!(r.elections, 0, "nobody died; the log epoch must not move: {r:?}");
        total_resends += r.update_resends;
    }
    assert!(
        total_resends > 0,
        "a 5% drop rate over 300 quorum-acked updates must force a suffix resend somewhere"
    );
}

#[test]
fn append_target_crash_mid_churn_elects_and_replays() {
    // The acceptance scenario: one span, two replica endpoints, 5 %
    // frame drops, churn in flight — and endpoint 0 (the bootstrap and
    // an append target) has its link severed mid-batch. The appender
    // must bump the epoch (election), rewind the survivor's send cursor
    // to its ack point, and replay the missing suffix; afterwards the
    // surviving replica's applied-op set must equal the mirror exactly
    // (the runner's convergence + post-quiesce sweep oracles).
    let mut sc = NetScenario::base("net-leader-crash-mid-append");
    sc.spans = 1;
    sc.endpoints_per_span = 2;
    sc.shards_per_server = 2;
    sc.link_latency = Duration::from_micros(20);
    sc.drop_prob = 0.05;
    sc.retry_timeout = Duration::from_millis(2);
    sc.max_retries = 40;
    sc.churn_ops = 300;
    sc.churn_gap = Duration::from_micros(40);
    sc.link_down = vec![(0, Duration::from_millis(3))];
    sc.latency_bound = None; // failover re-homing can stretch a tail
                             // The flight journal rides along: the runner asserts the recorded
                             // election/resend story matches the counters exactly, so the crash
                             // below must leave a journal trail.
    sc.flight = true;
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.ok, r.issued, "failover must hide the crash: {r:?}");
        assert_eq!((r.shed, r.shutdown), (0, 0), "a surviving replica means no errors");
        assert!(
            r.elections >= 1,
            "seed {seed}: the crash must have bumped the churn-log epoch ({r:?})"
        );
        assert!(
            r.flight_events >= r.elections,
            "seed {seed}: the election must have reached the flight journal ({r:?})"
        );
        assert!(r.updates_applied > 0, "churn must mutate the surviving index");
        assert!(
            r.served_per_server[1] > 0,
            "the surviving endpoint must carry traffic: {:?}",
            r.served_per_server
        );
    }
}

#[test]
fn partition_heals_and_the_lagging_replica_reconverges() {
    // A partition that *ends*: endpoint 1's link blacks out over
    // [2ms, 10ms) while churn streams through the span. Records
    // appended during the window reach only endpoint 0; the quorum of
    // two holds every Ok until the window heals and the appender's
    // repair resends the suffix endpoint 1 missed. The convergence
    // oracle then checks the *healed* replica against the mirror — it
    // lagged, it must not have diverged.
    let mut sc = NetScenario::base("net-partition-then-heal");
    sc.spans = 1;
    sc.endpoints_per_span = 2;
    sc.shards_per_server = 2;
    sc.link_latency = Duration::from_micros(20);
    sc.retry_timeout = Duration::from_millis(2);
    sc.max_retries = 40;
    sc.churn_ops = 300;
    sc.churn_gap = Duration::from_micros(40);
    sc.blackout = vec![(1, Duration::from_millis(2), Duration::from_millis(10))];
    sc.latency_bound = None; // appends stall across the window
    sc.flight = true; // every healed-suffix resend must leave a journal record
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.ok, r.issued, "a healed partition must cost time, not answers: {r:?}");
        assert_eq!((r.shed, r.shutdown), (0, 0));
        assert!(r.update_resends >= 1, "seed {seed}: healing must have replayed a suffix ({r:?})");
        assert!(
            r.flight_events >= r.update_resends,
            "seed {seed}: every resend must have reached the flight journal ({r:?})"
        );
        assert_eq!(
            r.elections, 0,
            "seed {seed}: a partition that heals inside the retry budget kills nobody ({r:?})"
        );
        assert!(r.updates_applied > 0, "churn must mutate the indexes");
    }
}

#[test]
fn dense_tracing_stitches_monotone_timelines_across_the_wire() {
    // The causal-tracing acceptance scenario: every frame traced on
    // both sides over clean links, with churn streaming alongside the
    // lookups. The runner stitches the client's wire records to the
    // servers' stage records on the shared trace id and asserts every
    // timeline is monotone on the one virtual clock (encoded ≤ admitted
    // ≤ … ≤ filled ≤ acked). Clean links only by design: a retry
    // re-encodes, which would legitimately reorder stages across
    // attempts. The flight journal rides along and must stay silent —
    // a fault-free run records no elections and no resends.
    let mut sc = NetScenario::base("net-dense-tracing-stitch");
    sc.dense_tracing = true;
    sc.flight = true;
    sc.churn_ops = 100;
    sc.churn_gap = Duration::from_micros(40);
    sc.latency_bound = None; // server-side quiesce stalls its connection
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.ok, r.issued, "clean links: every lookup answers: {r:?}");
        assert!(
            r.stitched_timelines > 0,
            "seed {seed}: dense tracing must stitch at least one client↔server timeline ({r:?})"
        );
        assert_eq!(
            (r.retries, r.elections, r.update_resends),
            (0, 0, 0),
            "seed {seed}: nothing failed, so the journal's story must be empty ({r:?})"
        );
    }
}

#[test]
fn live_stats_polls_mid_load_agree_with_the_processes() {
    // Wire introspection under load, on virtual time: a dedicated poller
    // thread fires StatsRequest frames at both spans every 500 µs while
    // the probe clients saturate the same sockets. The runner's oracles
    // assert each poll sees monotone, never-ahead-of-admission counters,
    // and after the load drains a final poll per span must agree
    // *exactly* with the in-process server's own accounting — the
    // observability plane and the data plane describing one truth.
    let mut sc = NetScenario::base("net-live-stats-polls");
    sc.stats_polls = 8;
    sc.stats_poll_gap = Duration::from_micros(500);
    sc.latency_bound = None; // ctrl frames share the lookup FIFO
    for seed in seeds_from_env() {
        let r = run_net_scenario_reproducibly(&sc, seed);
        assert_eq!(r.ok, r.issued, "polling must not perturb the load: {r:?}");
        assert_eq!((r.shed, r.shutdown, r.retries), (0, 0, 0));
        assert!(
            r.stats_polls_ok > 0,
            "seed {seed}: mid-load polls must actually come back ({r:?})"
        );
    }
}

#[test]
fn distinct_seeds_produce_distinct_schedules() {
    let sc = NetScenario::base("net-seeds-differ");
    let a = dini_simtest::run_net_scenario(&sc, 1);
    let b = dini_simtest::run_net_scenario(&sc, 2);
    assert_ne!(a.digest, b.digest, "different seeds must interleave the cluster differently");
}
