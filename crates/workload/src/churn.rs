//! Update workloads: interleaved query / insert / delete streams.
//!
//! The paper's index is static, but its motivating applications churn:
//! sensors join and leave, subscriptions come and go, routes are
//! advertised and withdrawn. [`ChurnGen`] emits a deterministic operation
//! stream with a configurable query:insert:delete mix over a chosen key
//! distribution, for exercising [`dini-index`'s `DeltaArray`] and the
//! examples that rebuild partition delimiters online.

use crate::dist::KeyDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One operation in an update workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Look the key up.
    Query(u32),
    /// Insert the key.
    Insert(u32),
    /// Delete the key.
    Delete(u32),
}

impl Op {
    /// The key this operation touches.
    pub fn key(self) -> u32 {
        match self {
            Op::Query(k) | Op::Insert(k) | Op::Delete(k) => k,
        }
    }
}

/// Operation-mix weights (need not sum to 1; normalised internally).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Relative weight of queries.
    pub query: f64,
    /// Relative weight of inserts.
    pub insert: f64,
    /// Relative weight of deletes.
    pub delete: f64,
}

impl OpMix {
    /// A read-mostly mix (90 % queries, 5 % inserts, 5 % deletes) — the
    /// regime where the delta-array design pays off.
    pub fn read_mostly() -> Self {
        Self { query: 0.9, insert: 0.05, delete: 0.05 }
    }

    /// A write-heavy mix (50 % queries, 30 % inserts, 20 % deletes).
    pub fn write_heavy() -> Self {
        Self { query: 0.5, insert: 0.3, delete: 0.2 }
    }

    fn total(&self) -> f64 {
        self.query + self.insert + self.delete
    }
}

/// Deterministic generator of interleaved query/insert/delete streams.
///
/// Deletes draw from the set of keys this generator has inserted (so they
/// usually hit); when nothing has been inserted yet a delete falls back
/// to a random (usually missing) key — which is itself a realistic case.
#[derive(Debug, Clone)]
pub struct ChurnGen {
    rng: StdRng,
    dist: KeyDistribution,
    mix: OpMix,
    live: Vec<u32>,
}

impl ChurnGen {
    /// A new generator.
    pub fn new(seed: u64, dist: KeyDistribution, mix: OpMix) -> Self {
        assert!(mix.total() > 0.0, "operation mix must have positive weight");
        assert!(mix.query >= 0.0 && mix.insert >= 0.0 && mix.delete >= 0.0);
        Self { rng: StdRng::seed_from_u64(seed), dist, mix, live: Vec::new() }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> Op {
        let u: f64 = self.rng.gen::<f64>() * self.mix.total();
        if u < self.mix.query {
            Op::Query(self.dist.sample(&mut self.rng))
        } else if u < self.mix.query + self.mix.insert {
            let k = self.dist.sample(&mut self.rng);
            self.live.push(k);
            Op::Insert(k)
        } else if let Some(&k) = self.live.get(self.rng.gen_range(0..self.live.len().max(1))) {
            // Delete a key we inserted earlier (swap-remove keeps O(1)).
            let i = self.live.iter().position(|&x| x == k).expect("k came from live");
            self.live.swap_remove(i);
            Op::Delete(k)
        } else {
            Op::Delete(self.dist.sample(&mut self.rng))
        }
    }

    /// Generate `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(mix: OpMix) -> ChurnGen {
        ChurnGen::new(7, KeyDistribution::Uniform, mix)
    }

    #[test]
    fn mix_ratios_are_respected() {
        let ops = mk(OpMix::read_mostly()).take(20_000);
        let q = ops.iter().filter(|o| matches!(o, Op::Query(_))).count() as f64;
        let i = ops.iter().filter(|o| matches!(o, Op::Insert(_))).count() as f64;
        let d = ops.iter().filter(|o| matches!(o, Op::Delete(_))).count() as f64;
        let n = ops.len() as f64;
        assert!((q / n - 0.9).abs() < 0.02, "queries {}", q / n);
        assert!((i / n - 0.05).abs() < 0.01);
        assert!((d / n - 0.05).abs() < 0.01);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = mk(OpMix::write_heavy()).take(1000);
        let b = mk(OpMix::write_heavy()).take(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn deletes_mostly_target_inserted_keys() {
        let ops = mk(OpMix::write_heavy()).take(10_000);
        let mut inserted = std::collections::HashSet::new();
        let mut hits = 0usize;
        let mut deletes = 0usize;
        for op in ops {
            match op {
                Op::Insert(k) => {
                    inserted.insert(k);
                }
                Op::Delete(k) => {
                    deletes += 1;
                    if inserted.contains(&k) {
                        hits += 1;
                    }
                }
                Op::Query(_) => {}
            }
        }
        assert!(deletes > 0);
        assert!(hits as f64 / deletes as f64 > 0.8, "deletes should mostly hit: {hits}/{deletes}");
    }

    #[test]
    fn op_key_accessor() {
        assert_eq!(Op::Query(7).key(), 7);
        assert_eq!(Op::Insert(8).key(), 8);
        assert_eq!(Op::Delete(9).key(), 9);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_mix_rejected() {
        let _ = mk(OpMix { query: 0.0, insert: 0.0, delete: 0.0 });
    }
}
