//! # dini-workload
//!
//! Deterministic workload generation for the DINI experiments.
//!
//! The paper's evaluation uses "randomly generated" 4-byte keys for both the
//! index contents and the 8 million (2^23) search keys, drawn uniformly.
//! This crate provides seeded, reproducible generators for that workload
//! plus skewed variants (Zipf, clustered, self-similar) used by our
//! beyond-paper ablations, interleaved update streams ([`churn`]) for the
//! dynamic-index extensions, open-loop arrival processes ([`arrivals`])
//! for serving-layer load generation, and serde-serialisable query traces
//! for replay.

#![warn(missing_docs)]

pub mod arrivals;
pub mod batch;
pub mod churn;
pub mod dist;
pub mod keys;
pub mod trace;

pub use arrivals::{ArrivalGen, ArrivalProcess};
pub use batch::{batch_count, BatchIter};
pub use churn::{ChurnGen, Op, OpMix};
pub use dist::KeyDistribution;
pub use keys::{gen_search_keys, gen_sorted_unique_keys, KeyGen};
pub use trace::QueryTrace;
