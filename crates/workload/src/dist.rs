//! Key distributions.
//!
//! The paper assumes uniformly distributed keys ("We assume uniformly
//! distributed search key values"). The skewed distributions here support
//! the beyond-paper ablation: skew concentrates load on one slave and
//! erodes Method C's balance assumption.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How search keys are drawn from the `u32` space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Uniform over all of `u32` (the paper's workload).
    Uniform,
    /// Zipf over `n_buckets` equal-width buckets with exponent `s`;
    /// bucket ranks are shuffled deterministically so popularity is not
    /// correlated with key order.
    Zipf {
        /// Number of equal-width key-space buckets.
        n_buckets: u32,
        /// Zipf exponent (1.0 = classic).
        s: f64,
    },
    /// All keys fall inside `[lo, hi)` — a hotspot hammering one partition.
    Clustered {
        /// Inclusive lower bound of the hotspot.
        lo: u32,
        /// Exclusive upper bound of the hotspot.
        hi: u32,
    },
    /// Hierarchically self-similar keys (the b-model): each address bit is
    /// drawn 1 with probability `bias`, so mass concentrates recursively —
    /// `bias = 0.5` degenerates to uniform, `0.9` is heavily skewed at
    /// every scale. A standard model for spatial sensor-reading and
    /// network-prefix locality.
    SelfSimilar {
        /// Per-bit probability of a 1 (in `(0, 1)`).
        bias: f64,
    },
}

impl KeyDistribution {
    /// Draw one key.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        match *self {
            KeyDistribution::Uniform => rng.gen(),
            KeyDistribution::Zipf { n_buckets, s } => {
                let bucket = zipf_sample(rng, n_buckets, s);
                // Scramble bucket order with a fixed bijection so the hot
                // bucket is not simply the lowest key range.
                let scrambled = scramble(bucket, n_buckets);
                let width = (u32::MAX / n_buckets).max(1);
                let base = scrambled.saturating_mul(width);
                base + rng.gen_range(0..width)
            }
            KeyDistribution::Clustered { lo, hi } => {
                assert!(lo < hi, "clustered range must be non-empty");
                rng.gen_range(lo..hi)
            }
            KeyDistribution::SelfSimilar { bias } => {
                assert!(bias > 0.0 && bias < 1.0, "bias must be in (0, 1)");
                let mut key = 0u32;
                for _ in 0..32 {
                    key <<= 1;
                    if rng.gen::<f64>() < bias {
                        key |= 1;
                    }
                }
                key
            }
        }
    }
}

/// Draw a Zipf(s) rank in `[0, n)` by inverse-CDF over precomputed weights.
/// O(log n) via binary search on the cumulative table would need state; for
/// workload generation simplicity we use the rejection-free inversion
/// approximation of Gray et al. (the standard "quick Zipf").
fn zipf_sample<R: Rng>(rng: &mut R, n: u32, s: f64) -> u32 {
    debug_assert!(n >= 1);
    // Approximate inverse CDF: for Zipf with exponent s over ranks 1..n,
    // P(rank ≤ k) ≈ H(k)/H(n) with H the generalized harmonic number,
    // which for s ≈ 1 behaves like ln. We use the standard approximation
    // rank ≈ exp(u * ln(n^(1-s) - ...)); for robustness across s we fall
    // back to a small cumulative walk for n ≤ 1024 and the power-law
    // inversion otherwise.
    if n <= 1024 {
        // Exact inversion over a cumulative walk (cheap at this size).
        let u: f64 = rng.gen::<f64>();
        let h: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
        let target = u * h;
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            if acc >= target {
                return k - 1;
            }
        }
        n - 1
    } else {
        // Power-law inversion: valid for s > 0, s != 1 uses the closed
        // form; s == 1 uses the exponential form.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let nf = n as f64;
        let k = if (s - 1.0).abs() < 1e-9 {
            nf.powf(u) // exp(u ln n)
        } else {
            let a = 1.0 - s;
            ((u * (nf.powf(a) - 1.0)) + 1.0).powf(1.0 / a)
        };
        (k.floor() as u32).clamp(1, n) - 1
    }
}

/// A fixed bijective scramble of `[0, n)` (multiplicative hash then mod).
fn scramble(x: u32, n: u32) -> u32 {
    if n <= 1 {
        return 0;
    }
    // Not a true bijection mod arbitrary n, but collision-free enough for
    // workload shaping; determinism is what matters.
    ((x as u64).wrapping_mul(2654435761) % n as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_spreads_over_halves() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = KeyDistribution::Uniform;
        let n = 10_000;
        let low = (0..n).filter(|_| d.sample(&mut rng) < u32::MAX / 2).count();
        assert!((low as f64 / n as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = KeyDistribution::Zipf { n_buckets: 64, s: 1.0 };
        let mut counts = [0u32; 64];
        for _ in 0..20_000 {
            let k = d.sample(&mut rng);
            counts[(k / (u32::MAX / 64)).min(63) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = 20_000.0 / 64.0;
        assert!(max > 3.0 * mean, "zipf(1.0) hottest bucket should far exceed the mean");
    }

    #[test]
    fn clustered_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = KeyDistribution::Clustered { lo: 1000, hi: 2000 };
        for _ in 0..1000 {
            let k = d.sample(&mut rng);
            assert!((1000..2000).contains(&k));
        }
    }

    #[test]
    fn self_similar_half_bias_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = KeyDistribution::SelfSimilar { bias: 0.5 };
        let n = 10_000;
        let low = (0..n).filter(|_| d.sample(&mut rng) < u32::MAX / 2).count();
        assert!((low as f64 / n as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn self_similar_high_bias_concentrates_high_keys() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = KeyDistribution::SelfSimilar { bias: 0.9 };
        let n = 10_000;
        // Top bit is 1 with p = 0.9 → ~90 % of keys in the upper half, and
        // the same recursively within it.
        let high = (0..n).filter(|_| d.sample(&mut rng) >= u32::MAX / 2).count();
        assert!(high as f64 / n as f64 > 0.85);
        let top_quarter = (0..n).filter(|_| d.sample(&mut rng) >= u32::MAX / 4 * 3).count();
        assert!(top_quarter as f64 / n as f64 > 0.75);
    }

    #[test]
    #[should_panic(expected = "bias must be in")]
    fn self_similar_rejects_degenerate_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = KeyDistribution::SelfSimilar { bias: 1.0 }.sample(&mut rng);
    }

    #[test]
    fn zipf_large_n_path() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = KeyDistribution::Zipf { n_buckets: 4096, s: 1.0 };
        for _ in 0..1000 {
            let _ = d.sample(&mut rng); // must not panic / go out of range
        }
    }
}
