//! Arrival processes for open-loop load generation.
//!
//! A closed-loop client (issue, wait, repeat) can never overload a
//! server: its offered load collapses as latency grows. Serving-layer
//! questions — shed rates under overload, queueing-delay percentiles near
//! saturation — need an *open-loop* generator that decides arrival times
//! independently of completions. [`ArrivalGen`] produces deterministic,
//! seeded inter-arrival gaps: exponential (Poisson process, the classic
//! open-loop model) or uniform (a paced, jitter-free probe stream).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of the inter-arrival distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential gaps with the given mean. Bursty in
    /// exactly the way independent user traffic is.
    Poisson {
        /// Mean inter-arrival gap in nanoseconds.
        mean_gap_ns: f64,
    },
    /// Evenly paced arrivals with a constant gap.
    Uniform {
        /// Constant inter-arrival gap in nanoseconds.
        gap_ns: f64,
    },
}

impl ArrivalProcess {
    /// A Poisson process offering `rate_per_sec` arrivals per second.
    pub fn poisson_rate(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        ArrivalProcess::Poisson { mean_gap_ns: 1e9 / rate_per_sec }
    }

    /// A paced process offering `rate_per_sec` arrivals per second.
    pub fn uniform_rate(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        ArrivalProcess::Uniform { gap_ns: 1e9 / rate_per_sec }
    }
}

/// Deterministic generator of inter-arrival gaps.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    rng: StdRng,
    process: ArrivalProcess,
}

impl ArrivalGen {
    /// A new generator; same seed + process → same gap stream.
    pub fn new(seed: u64, process: ArrivalProcess) -> Self {
        match process {
            ArrivalProcess::Poisson { mean_gap_ns } => {
                assert!(mean_gap_ns > 0.0, "mean gap must be positive")
            }
            ArrivalProcess::Uniform { gap_ns } => {
                assert!(gap_ns > 0.0, "gap must be positive")
            }
        }
        Self { rng: StdRng::seed_from_u64(seed), process }
    }

    /// Nanoseconds until the next arrival.
    pub fn next_gap_ns(&mut self) -> f64 {
        match self.process {
            ArrivalProcess::Poisson { mean_gap_ns } => {
                // Inverse-CDF: gap = -mean · ln(1 − u), u ∈ [0, 1).
                let u: f64 = self.rng.gen();
                -mean_gap_ns * (1.0 - u).ln()
            }
            ArrivalProcess::Uniform { gap_ns } => gap_ns,
        }
    }

    /// Generate `n` gaps.
    pub fn take(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_gap_ns()).collect()
    }

    /// Absolute time of the next arrival, given the previous arrival at
    /// `prev_ns` (integer nanoseconds on whatever clock the caller runs —
    /// wall or virtual; the generator itself never looks at a clock,
    /// which is what lets the same arrival schedule drive native load
    /// and `dini-simtest`'s virtual time identically).
    pub fn next_at_ns(&mut self, prev_ns: u64) -> u64 {
        prev_ns.saturating_add(self.next_gap_ns() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_converges() {
        let mut g = ArrivalGen::new(1, ArrivalProcess::poisson_rate(1_000_000.0));
        let n = 100_000;
        let mean = g.take(n).iter().sum::<f64>() / n as f64;
        // Rate 1M/s → mean gap 1000 ns; CLT gives ±1 % at n = 100k.
        assert!((mean - 1000.0).abs() < 30.0, "mean gap {mean}");
    }

    #[test]
    fn poisson_gaps_are_bursty() {
        let mut g = ArrivalGen::new(2, ArrivalProcess::poisson_rate(1000.0));
        let gaps = g.take(10_000);
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        // Exponential gaps have coefficient of variation 1.
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn uniform_gaps_are_constant() {
        let mut g = ArrivalGen::new(3, ArrivalProcess::uniform_rate(2000.0));
        for gap in g.take(100) {
            assert_eq!(gap, 500_000.0);
        }
    }

    #[test]
    fn absolute_schedule_accumulates_gaps() {
        let mut a = ArrivalGen::new(11, ArrivalProcess::uniform_rate(1_000_000.0));
        let mut at = 0u64;
        for i in 1..=5u64 {
            at = a.next_at_ns(at);
            assert_eq!(at, i * 1000);
        }
        // Poisson schedules are strictly increasing and deterministic.
        let sched = |seed| {
            let mut g = ArrivalGen::new(seed, ArrivalProcess::poisson_rate(10_000.0));
            let mut at = 0u64;
            (0..100)
                .map(|_| {
                    at = g.next_at_ns(at);
                    at
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sched(3), sched(3));
        assert!(sched(3).windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn generator_is_deterministic() {
        let a = ArrivalGen::new(7, ArrivalProcess::poisson_rate(500.0)).take(1000);
        let b = ArrivalGen::new(7, ArrivalProcess::poisson_rate(500.0)).take(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn gaps_are_non_negative_and_finite() {
        let mut g = ArrivalGen::new(9, ArrivalProcess::poisson_rate(1e9));
        for gap in g.take(10_000) {
            assert!(gap.is_finite() && gap >= 0.0, "gap {gap}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = ArrivalProcess::poisson_rate(0.0);
    }
}
