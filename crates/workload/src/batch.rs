//! Batch slicing.
//!
//! The paper's Figure 3 sweeps the *message/batch size* from 8 KB to 4 MB.
//! A batch of `batch_bytes` holds `batch_bytes / 4` four-byte keys; this
//! module turns a key stream into those batches.

/// Iterator over `&[u32]` chunks of a fixed byte size (last may be short).
#[derive(Debug, Clone)]
pub struct BatchIter<'a> {
    keys: &'a [u32],
    keys_per_batch: usize,
    pos: usize,
}

impl<'a> BatchIter<'a> {
    /// Split `keys` into batches of `batch_bytes` (4 bytes per key).
    pub fn new(keys: &'a [u32], batch_bytes: usize) -> Self {
        assert!(batch_bytes >= 4, "a batch must hold at least one key");
        Self { keys, keys_per_batch: batch_bytes / 4, pos: 0 }
    }
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = &'a [u32];

    fn next(&mut self) -> Option<&'a [u32]> {
        if self.pos >= self.keys.len() {
            return None;
        }
        let end = (self.pos + self.keys_per_batch).min(self.keys.len());
        let b = &self.keys[self.pos..end];
        self.pos = end;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.keys.len() - self.pos;
        let n = rem.div_ceil(self.keys_per_batch);
        (n, Some(n))
    }
}

impl ExactSizeIterator for BatchIter<'_> {}

/// How many batches a workload of `n_keys` produces at `batch_bytes`.
pub fn batch_count(n_keys: usize, batch_bytes: usize) -> usize {
    n_keys.div_ceil(batch_bytes / 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_cover_all_keys_in_order() {
        let keys: Vec<u32> = (0..100).collect();
        let got: Vec<u32> = BatchIter::new(&keys, 32).flatten().copied().collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn batch_sizes_are_exact_except_last() {
        let keys: Vec<u32> = (0..100).collect();
        let sizes: Vec<usize> = BatchIter::new(&keys, 32).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 4]);
    }

    #[test]
    fn paper_figure3_batch_counts() {
        // 8 M keys = 32 MB of keys; at 8 KB per message that is 4096 messages.
        assert_eq!(batch_count(1 << 23, 8 * 1024), 4096);
        assert_eq!(batch_count(1 << 23, 4 * 1024 * 1024), 8);
    }

    #[test]
    fn size_hint_is_exact() {
        let keys: Vec<u32> = (0..100).collect();
        let it = BatchIter::new(&keys, 32);
        assert_eq!(it.len(), 13);
    }
}
