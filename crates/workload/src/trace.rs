//! Serialisable query traces for record/replay.
//!
//! Experiments record (seed, distribution, counts) rather than raw keys,
//! so traces stay small; `materialize` regenerates the identical key
//! stream on demand.

use crate::dist::KeyDistribution;
use crate::keys::{gen_search_keys, gen_sorted_unique_keys, KeyGen};
use serde::{Deserialize, Serialize};

/// A reproducible description of one experiment's workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Number of keys in the index (the paper: 327,680).
    pub index_keys: usize,
    /// Number of search keys (the paper: 2^23).
    pub search_keys: usize,
    /// RNG seed for the index contents.
    pub index_seed: u64,
    /// RNG seed for the search keys.
    pub search_seed: u64,
    /// Distribution of the search keys.
    pub dist: KeyDistribution,
}

impl QueryTrace {
    /// The paper's Section 4 workload: 327 k index keys, 2^23 uniform
    /// search keys.
    pub fn paper(search_keys: usize) -> Self {
        Self {
            index_keys: 327_680,
            search_keys,
            index_seed: 0xD1A1,
            search_seed: 0x05_EAC4,
            dist: KeyDistribution::Uniform,
        }
    }

    /// A scaled-down trace for tests.
    pub fn small() -> Self {
        Self {
            index_keys: 4096,
            search_keys: 20_000,
            index_seed: 1,
            search_seed: 2,
            dist: KeyDistribution::Uniform,
        }
    }

    /// Regenerate (index keys, search keys).
    pub fn materialize(&self) -> (Vec<u32>, Vec<u32>) {
        let index = gen_sorted_unique_keys(self.index_keys, self.index_seed);
        let search = match self.dist {
            KeyDistribution::Uniform => gen_search_keys(self.search_keys, self.search_seed),
            d => KeyGen::new(self.search_seed, d).take(self.search_keys),
        };
        (index, search)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_is_reproducible() {
        let t = QueryTrace::small();
        assert_eq!(t.materialize(), t.materialize());
    }

    #[test]
    fn clone_preserves_identity() {
        let t = QueryTrace::paper(1 << 10);
        let u = t.clone();
        assert_eq!(t, u);
        assert_eq!(t.materialize().0, u.materialize().0);
    }

    #[test]
    fn paper_trace_has_expected_sizes() {
        let t = QueryTrace::paper(1 << 23);
        assert_eq!(t.index_keys, 327_680);
        assert_eq!(t.search_keys, 1 << 23);
    }
}
