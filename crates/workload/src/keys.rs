//! Key generation.
//!
//! All generators are seeded (`StdRng`) so every experiment is exactly
//! reproducible; the paper's setup is `gen_sorted_unique_keys(327_680)` for
//! the index and `gen_search_keys(1 << 23)` for the queries.

use crate::dist::KeyDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded key generator over a chosen distribution.
#[derive(Debug, Clone)]
pub struct KeyGen {
    rng: StdRng,
    dist: KeyDistribution,
}

impl KeyGen {
    /// A generator with an explicit seed and distribution.
    pub fn new(seed: u64, dist: KeyDistribution) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), dist }
    }

    /// Uniform generator with the crate's default experiment seed.
    pub fn uniform(seed: u64) -> Self {
        Self::new(seed, KeyDistribution::Uniform)
    }

    /// Next key.
    pub fn next_key(&mut self) -> u32 {
        self.dist.sample(&mut self.rng)
    }

    /// Fill a vector with `n` keys.
    pub fn take(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.next_key()).collect()
    }
}

/// `n` sorted, de-duplicated keys drawn uniformly from the full `u32`
/// range — the index contents ("the keys used to construct the index
/// structure are randomly generated").
///
/// Keeps drawing until exactly `n` unique keys exist, so the index size is
/// exact (the paper's 327 kilo keys).
pub fn gen_sorted_unique_keys(n: usize, seed: u64) -> Vec<u32> {
    assert!(n > 0, "index must hold at least one key");
    assert!(
        (n as u64) <= (u32::MAX as u64) / 2,
        "cannot draw {n} unique keys from the u32 space without quadratic rejection"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
    keys.sort_unstable();
    keys.dedup();
    while keys.len() < n {
        let missing = n - keys.len();
        let extra: Vec<u32> = (0..missing.max(16)).map(|_| rng.gen()).collect();
        keys.extend(extra);
        keys.sort_unstable();
        keys.dedup();
    }
    keys.truncate(n);
    keys
}

/// `n` uniform search keys (the paper's 2^23 queries).
pub fn gen_search_keys(n: usize, seed: u64) -> Vec<u32> {
    KeyGen::uniform(seed).take(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_unique_is_sorted_unique_and_exact() {
        let keys = gen_sorted_unique_keys(10_000, 42);
        assert_eq!(keys.len(), 10_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gen_sorted_unique_keys(1000, 7), gen_sorted_unique_keys(1000, 7));
        assert_eq!(gen_search_keys(1000, 7), gen_search_keys(1000, 7));
        assert_ne!(gen_search_keys(1000, 7), gen_search_keys(1000, 8));
    }

    #[test]
    fn search_keys_cover_the_range() {
        let keys = gen_search_keys(100_000, 1);
        let lo = keys.iter().copied().min().unwrap();
        let hi = keys.iter().copied().max().unwrap();
        // Uniform over u32: extremes within 1% of the range ends w.h.p.
        assert!(lo < u32::MAX / 100);
        assert!(hi > u32::MAX - u32::MAX / 100);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_rejected() {
        gen_sorted_unique_keys(0, 0);
    }
}
