//! The Zhou–Ross buffering access technique (VLDB 2003), as used by the
//! paper's Method B (subtrees sized for L2) and Method C-2 (sized for L1).
//!
//! The tree is logically cut into segments of levels such that any subtree
//! within a segment fits the target cache (times a fill factor that leaves
//! room for the buffers themselves). A batch of keys is pushed through the
//! top segment; each key lands in the buffer of the boundary node that
//! roots its next subtree. Buffers are then drained one subtree at a time,
//! so the subtree being traversed stays cache-resident and the expensive
//! random misses of a cold tree walk are replaced by (cheap, streaming)
//! buffer writes — exactly the trade the paper's Method B analysis prices
//! at `B2_penalty × 4/B2 × (T/L − 1)` per key.

use crate::csb::CsbTree;
use crate::traits::{Cost, RankIndex};
use dini_cache_sim::{AccessKind, AddressSpace, MemoryModel};

/// Level boundaries of the subtree decomposition.
///
/// `boundaries[i]` is the first tree level of segment `i`; segment `i`
/// spans levels `boundaries[i] .. boundaries[i+1]` (the last runs to `T`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubtreeCuts {
    /// Segment start levels; `boundaries[0] == 0`, strictly increasing.
    pub boundaries: Vec<usize>,
}

impl SubtreeCuts {
    /// Greedy **bottom-up** decomposition: starting from the leaf level,
    /// each segment absorbs as many levels upward as possible while a
    /// subtree rooted at the segment's top level (spanning the whole
    /// segment) still fits `capacity_bytes * fill_factor`. Every segment
    /// gets at least one level, so the decomposition always terminates.
    ///
    /// Bottom-up matters: the expensive levels are the wide ones near the
    /// leaves, so they must form deep cache-fitting subtrees. (A top-down
    /// greedy instead eats the cheap upper levels and strands the leaf
    /// level in single-node "subtrees" with one buffer per leaf — the
    /// paper's Table 1 shape, a tiny 44-byte root subtree above 320 KB
    /// lower subtrees, only emerges bottom-up.)
    pub fn for_capacity(tree: &CsbTree, capacity_bytes: u64, fill_factor: f64) -> Self {
        assert!(fill_factor > 0.0 && fill_factor <= 1.0);
        let t = tree.n_levels();
        let budget = (capacity_bytes as f64 * fill_factor) as u64;
        let mut rev_boundaries = Vec::new();
        let mut end = t; // exclusive end of the segment being formed
        while end > 0 {
            let mut start = end - 1;
            // Absorb levels upward while the (leftmost, i.e. fullest)
            // subtree rooted at the candidate level still fits.
            while start > 0 {
                let cand = start - 1;
                let root = tree.levels()[cand].start;
                if tree.subtree_bytes(root, end - cand) <= budget {
                    start = cand;
                } else {
                    break;
                }
            }
            rev_boundaries.push(start);
            end = start;
        }
        rev_boundaries.reverse();
        Self { boundaries: rev_boundaries }
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.boundaries.len()
    }

    /// The levels spanned by segment `s` in a tree of `t` levels.
    pub fn segment_levels(&self, s: usize, t: usize) -> std::ops::Range<usize> {
        let start = self.boundaries[s];
        let end = self.boundaries.get(s + 1).copied().unwrap_or(t);
        start..end
    }
}

/// One buffered entry: (search key, query id within the batch).
type Entry = (u32, u32);

/// Per-boundary-level buffer storage, reused across batches.
#[derive(Debug)]
struct LevelBuffers {
    /// Tree level these buffers sit in front of.
    level: usize,
    /// One buffer per node of that level (indexed by `node - level.start`).
    entries: Vec<Vec<Entry>>,
    /// Simulated base address of each buffer region.
    bases: Vec<u64>,
}

/// Reusable executor for buffered batch lookups over a [`CsbTree`].
#[derive(Debug)]
pub struct BufferedLookup {
    cuts: SubtreeCuts,
    levels: Vec<LevelBuffers>,
    /// Bytes reserved per buffer in the simulated address space.
    buffer_region_bytes: u64,
}

impl BufferedLookup {
    /// Build buffers for `tree` under the given cuts, carving simulated
    /// buffer regions out of `space`. `max_batch_keys` bounds the virtual
    /// region reserved per buffer (worst case: every key in one buffer).
    pub fn new(
        tree: &CsbTree,
        cuts: SubtreeCuts,
        space: &mut AddressSpace,
        max_batch_keys: usize,
    ) -> Self {
        let region = (max_batch_keys as u64 * 8).max(64);
        let mut levels = Vec::new();
        for s in 1..cuts.n_segments() {
            let level = cuts.boundaries[s];
            let range = tree.levels()[level].clone();
            let width = (range.end - range.start) as usize;
            let bases = (0..width).map(|_| space.alloc_lines(region)).collect();
            levels.push(LevelBuffers { level, entries: vec![Vec::new(); width], bases });
        }
        Self { cuts, levels, buffer_region_bytes: region }
    }

    /// Convenience: decompose for a cache capacity and build.
    pub fn for_cache(
        tree: &CsbTree,
        capacity_bytes: u64,
        fill_factor: f64,
        space: &mut AddressSpace,
        max_batch_keys: usize,
    ) -> Self {
        let cuts = SubtreeCuts::for_capacity(tree, capacity_bytes, fill_factor);
        Self::new(tree, cuts, space, max_batch_keys)
    }

    /// The decomposition in force.
    pub fn cuts(&self) -> &SubtreeCuts {
        &self.cuts
    }

    /// Total simulated bytes reserved for buffers.
    pub fn buffer_footprint_bytes(&self) -> u64 {
        self.levels.iter().map(|l| l.bases.len() as u64 * self.buffer_region_bytes).sum()
    }

    /// Batched rank lookup: `out[i]` receives the rank of `keys[i]`.
    /// Returns the simulated cost. The caller charges reading the *input*
    /// batch (it owns that buffer); this method charges tree-node accesses,
    /// buffer writes (random write-allocate: the paper's
    /// `B2 × 4/B2` term emerges from the cache sim) and buffer re-reads
    /// (streaming). Results are stored **in place** in the buffer slot the
    /// key was just read from — the paper's contention trick ("the search
    /// key and the corresponding lookup result are stored in the same
    /// memory location") — so result writes hit the already-resident line
    /// and cost nothing extra.
    pub fn rank_batch<M: MemoryModel>(
        &mut self,
        tree: &CsbTree,
        keys: &[u32],
        out: &mut Vec<u32>,
        mem: &mut M,
    ) -> Cost {
        out.clear();
        out.resize(keys.len(), 0);
        if tree.len() == 0 {
            return 0.0;
        }
        let t = tree.n_levels();
        let mut ns = 0.0;

        // Segment 0: from the root, every input key.
        let seg0 = self.cuts.segment_levels(0, t);
        let seg0_depth = seg0.len();
        let is_final = self.cuts.n_segments() == 1;
        for (qid, &key) in keys.iter().enumerate() {
            ns += self.push_through_segment(
                tree,
                0,
                tree.levels()[0].start,
                key,
                qid as u32,
                seg0_depth,
                is_final,
                out,
                mem,
            );
        }

        // Segments 1..: drain each boundary buffer subtree by subtree.
        for s in 1..self.cuts.n_segments() {
            let seg = self.cuts.segment_levels(s, t);
            let depth = seg.len();
            let is_final = s == self.cuts.n_segments() - 1;
            let level_start = tree.levels()[self.cuts.boundaries[s]].start;
            // Move the buffers out to appease the borrow checker; cheap
            // (Vec of Vecs swap).
            let mut entries = std::mem::take(&mut self.levels[s - 1].entries);
            let bases = std::mem::take(&mut self.levels[s - 1].bases);
            for (off, buf) in entries.iter_mut().enumerate() {
                if buf.is_empty() {
                    continue;
                }
                let root = level_start + off as u32;
                let base = bases[off];
                for (i, &(key, qid)) in buf.iter().enumerate() {
                    // Sequential re-read of the buffered entry.
                    ns += mem.touch(base + i as u64 * 8, 8, AccessKind::StreamRead);
                    ns += self
                        .push_through_segment(tree, s, root, key, qid, depth, is_final, out, mem);
                }
                buf.clear();
            }
            self.levels[s - 1].entries = entries;
            self.levels[s - 1].bases = bases;
        }
        ns
    }

    /// Walk `key` down `depth` levels from `root`. In the final segment
    /// that reaches a leaf (result written); otherwise the key is appended
    /// to the boundary buffer of the reached node.
    #[allow(clippy::too_many_arguments)]
    fn push_through_segment<M: MemoryModel>(
        &mut self,
        tree: &CsbTree,
        seg: usize,
        root: u32,
        key: u32,
        qid: u32,
        depth: usize,
        is_final: bool,
        out: &mut [u32],
        mem: &mut M,
    ) -> Cost {
        let mut ns = 0.0;
        let mut node = root;
        let steps = if is_final { depth - 1 } else { depth };
        for _ in 0..steps {
            let (child, c) = tree.descend(node, key, mem);
            node = child;
            ns += c;
        }
        if is_final {
            let (rank, c) = tree.leaf_rank(node, key, mem);
            ns += c;
            // In-place result store: the rank overwrites the key in the
            // buffer slot just read, whose line is resident — no charge.
            // `out` is the host-side view of those slots.
            out[qid as usize] = rank;
        } else {
            let lb = &mut self.levels[seg];
            debug_assert_eq!(tree.level_of(node), lb.level);
            let off = (node - tree.levels()[lb.level].start) as usize;
            let buf = &mut lb.entries[off];
            // Random-target, sequential-within-buffer write: the cache sim
            // prices the first write to each buffer line as a miss and the
            // following line-fills as hits, reproducing the model's
            // amortised `4/B2` miss fraction.
            ns += mem.touch(lb.bases[off] + buf.len() as u64 * 8, 8, AccessKind::Write);
            buf.push((key, qid));
        }
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{oracle_rank, RankIndex};
    use dini_cache_sim::{MachineParams, NullMemory, SimMemory};

    fn keys(n: u32) -> Vec<u32> {
        (1..=n).map(|i| i * 7).collect()
    }

    #[test]
    fn cuts_cover_all_levels_once() {
        let ks = keys(300_000);
        let tree = CsbTree::new(&ks, 7, 32, 0, 30.0);
        for cap in [16 * 1024u64, 512 * 1024, 8 * 1024] {
            let cuts = SubtreeCuts::for_capacity(&tree, cap, 0.5);
            assert_eq!(cuts.boundaries[0], 0);
            assert!(cuts.boundaries.windows(2).all(|w| w[0] < w[1]));
            let t = tree.n_levels();
            let covered: usize =
                (0..cuts.n_segments()).map(|s| cuts.segment_levels(s, t).len()).sum();
            assert_eq!(covered, t);
        }
    }

    #[test]
    fn smaller_cache_means_more_segments() {
        let ks = keys(300_000);
        let tree = CsbTree::new(&ks, 7, 32, 0, 30.0);
        let l2 = SubtreeCuts::for_capacity(&tree, 512 * 1024, 0.5);
        let l1 = SubtreeCuts::for_capacity(&tree, 16 * 1024, 0.5);
        assert!(l1.n_segments() >= l2.n_segments());
        assert!(l2.n_segments() >= 2, "a 1.7 MB tree cannot be one 256 KB segment");
    }

    #[test]
    fn subtrees_fit_their_budget() {
        let ks = keys(300_000);
        let tree = CsbTree::new(&ks, 7, 32, 0, 30.0);
        let cap = 512 * 1024u64;
        let cuts = SubtreeCuts::for_capacity(&tree, cap, 0.5);
        let t = tree.n_levels();
        for s in 0..cuts.n_segments() {
            let seg = cuts.segment_levels(s, t);
            if seg.len() == 1 {
                continue; // forced progress may exceed budget at depth 1
            }
            let root = tree.levels()[seg.start].start;
            assert!(tree.subtree_bytes(root, seg.len()) <= cap / 2);
        }
    }

    #[test]
    fn buffered_rank_matches_oracle() {
        let ks = keys(50_000);
        let tree = CsbTree::new(&ks, 7, 32, 1 << 20, 30.0);
        let mut space = AddressSpace::new();
        let search: Vec<u32> = (0..10_000u32).map(|i| i.wrapping_mul(104_729) % 400_000).collect();
        let mut bl = BufferedLookup::for_cache(&tree, 16 * 1024, 0.5, &mut space, search.len());
        let mut out = Vec::new();
        bl.rank_batch(&tree, &search, &mut out, &mut NullMemory);
        for (i, &k) in search.iter().enumerate() {
            assert_eq!(out[i], oracle_rank(&ks, k), "key {k}");
        }
    }

    #[test]
    fn buffered_rank_matches_plain_rank_under_sim() {
        // Same answers whether memory is instrumented or not.
        let ks = keys(20_000);
        let tree = CsbTree::new(&ks, 7, 32, 1 << 20, 30.0);
        let mut space = AddressSpace::new();
        let search: Vec<u32> = (0..5_000u32).map(|i| i.wrapping_mul(7919) % 150_000).collect();
        let mut bl = BufferedLookup::for_cache(&tree, 16 * 1024, 0.5, &mut space, search.len());
        let mut mem = SimMemory::new(MachineParams::pentium_iii());
        let mut out = Vec::new();
        let ns = bl.rank_batch(&tree, &search, &mut out, &mut mem);
        assert!(ns > 0.0);
        for (i, &k) in search.iter().enumerate() {
            assert_eq!(out[i], tree.rank(k, &mut NullMemory).0);
        }
    }

    #[test]
    fn buffering_beats_naive_on_out_of_cache_tree() {
        // The whole point of Method B: for a tree ≫ L2, buffered batch
        // lookup costs less simulated time than one-at-a-time lookups.
        // ~3.7 MB tree vs a 512 KB L2 — comparable to the paper's 3.2 MB
        // tree, where naive lookups miss on the bottom two levels.
        let ks = keys(800_000);
        let tree = CsbTree::new(&ks, 7, 32, 1 << 24, 30.0);
        // Uniform over the indexed key range, and (as in the paper, which
        // runs 8 M queries against 47 k leaves) many more queries than
        // leaves so the batched pass amortises each subtree load.
        let span = 800_000u64 * 7;
        let search: Vec<u32> =
            (0..200_000u64).map(|i| (i.wrapping_mul(2_654_435_761) % span) as u32).collect();

        let p = MachineParams::pentium_iii();
        let mut naive_mem = SimMemory::new(p.clone());
        let mut naive_ns = 0.0;
        for &k in &search {
            naive_ns += tree.rank(k, &mut naive_mem).1;
        }

        let mut space = AddressSpace::new();
        let mut bl =
            BufferedLookup::for_cache(&tree, p.l2.size_bytes, 0.5, &mut space, search.len());
        let mut buf_mem = SimMemory::new(p);
        let mut out = Vec::new();
        let buf_ns = bl.rank_batch(&tree, &search, &mut out, &mut buf_mem);

        assert!(
            buf_ns < naive_ns,
            "buffered ({buf_ns:.0} ns) should beat naive ({naive_ns:.0} ns)"
        );
    }

    #[test]
    fn single_segment_tree_needs_no_buffers() {
        let ks = keys(100); // tiny tree fits any cache
        let tree = CsbTree::new(&ks, 7, 32, 0, 30.0);
        let mut space = AddressSpace::new();
        let mut bl = BufferedLookup::for_cache(&tree, 512 * 1024, 0.5, &mut space, 100);
        assert_eq!(bl.cuts().n_segments(), 1);
        let mut out = Vec::new();
        bl.rank_batch(&tree, &[70, 71], &mut out, &mut NullMemory);
        assert_eq!(out, vec![10, 10]);
    }
}
