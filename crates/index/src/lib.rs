//! # dini-index
//!
//! The index-structure substrate for the DINI reproduction of Ma &
//! Cooperman (CLUSTER 2005). Every structure the paper's five methods need
//! is here, each instrumented against
//! [`dini_cache_sim::MemoryModel`] so the same code runs natively (free
//! accesses) or on the simulated Pentium III (Table 2 costs):
//!
//! * [`SortedArray`] — cache-aligned sorted array with binary search
//!   (Method C-3's slave structure and the master's delimiter array).
//! * [`CsbTree`] — sorted n-ary tree in the CSB+ layout of Rao & Ross:
//!   each 1-line node stores `n` keys plus a single first-child index;
//!   children are contiguous (Methods A, B, and C-1).
//! * [`PtrNaryTree`] — the classic layout storing every child pointer
//!   (halves the fan-out; our ablation quantifying the CSB+ optimisation).
//! * [`buffered`] — the Zhou–Ross buffering access technique: decompose
//!   the tree into cache-sized subtrees with per-subtree key buffers and
//!   process lookups in batches (Method B targets L2, Method C-2 L1).
//! * [`partition`] — range-partitioning a sorted key set across slaves,
//!   with the delimiter array the master dispatches on (Method C).
//! * [`hash_index`] — the structure the paper *excludes* ("we do not
//!   consider hash arrays"): exact-match only, so it cannot implement
//!   [`RankIndex`]; built anyway as the ablation quantifying what the
//!   range requirement costs.
//! * [`delta`] — [`DeltaArray`]: updates (insert/delete/merge) on top of a
//!   static sorted main array, for the paper's dynamic use-cases.
//!
//! ## Semantics
//!
//! All structures compute the same function: `rank(key)` = number of index
//! keys `≤ key` (an upper-bound count in `0..=n`). Partitioned lookups
//! compose as `global_rank = base_rank(partition) + local_rank`, which the
//! integration tests verify against the flat structures.

#![warn(missing_docs)]

pub mod buffered;
pub mod csb;
pub mod delta;
pub mod hash_index;
pub mod partition;
pub mod ptr_tree;
pub mod sorted_array;
pub mod traits;

pub use buffered::{BufferedLookup, SubtreeCuts};
pub use csb::CsbTree;
pub use delta::DeltaArray;
pub use hash_index::HashIndex;
pub use partition::{PartitionedIndex, Partitions};
pub use ptr_tree::PtrNaryTree;
pub use sorted_array::SortedArray;
pub use traits::{Cost, RankIndex};
