//! Range partitioning: the heart of the distributed in-cache index.
//!
//! The sorted key set is cut into equal-size contiguous partitions, one per
//! slave. The master keeps only the partition *delimiters* ("a sorted array
//! of partition delimiters on the master node", Figure 2); dispatching a
//! query is a rank lookup over that tiny, cache-resident array. Global
//! ranks compose: `rank(key) = base_rank(p) + local_rank(key in p)`.

use crate::sorted_array::SortedArray;
use crate::traits::{Cost, RankIndex};
use dini_cache_sim::MemoryModel;

/// The split of a sorted key set into `parts` contiguous ranges.
#[derive(Debug, Clone)]
pub struct Partitions {
    /// First key of each partition except the first (`parts - 1` entries).
    pub delimiters: Vec<u32>,
    /// Rank of the first key of each partition (`parts` entries).
    pub base_ranks: Vec<u32>,
    /// Key-index range of each partition (`parts` entries).
    pub ranges: Vec<std::ops::Range<usize>>,
}

impl Partitions {
    /// Split `keys` (sorted) into `parts` equal-size partitions.
    pub fn split(keys: &[u32], parts: usize) -> Self {
        assert!(parts >= 1, "need at least one partition");
        assert!(
            keys.len() >= parts,
            "cannot split {} keys into {} non-empty partitions",
            keys.len(),
            parts
        );
        // Balanced split: the first `len % parts` partitions get one extra
        // key, so every partition is non-empty for any len >= parts (a
        // ceil-chunked split leaves empty tails when len barely exceeds
        // parts).
        let base = keys.len() / parts;
        let extra = keys.len() % parts;
        let mut delimiters = Vec::with_capacity(parts - 1);
        let mut base_ranks = Vec::with_capacity(parts);
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0usize;
        for j in 0..parts {
            let size = base + usize::from(j < extra);
            base_ranks.push(start as u32);
            ranges.push(start..start + size);
            if j > 0 {
                delimiters.push(keys[start]);
            }
            start += size;
        }
        debug_assert_eq!(start, keys.len());
        Self { delimiters, base_ranks, ranges }
    }

    /// Number of partitions.
    pub fn n_parts(&self) -> usize {
        self.base_ranks.len()
    }

    /// Which partition owns `key` (uninstrumented; the master's
    /// instrumented dispatch goes through its delimiter [`SortedArray`]).
    pub fn dispatch(&self, key: u32) -> usize {
        self.delimiters.partition_point(|&d| d <= key)
    }
}

/// A partitioned index: the master's delimiter array plus one rank
/// structure per partition. Generic over the slave-side structure so the
/// same plumbing serves C-1 (tree), C-2 (buffered tree), and C-3 (array).
#[derive(Debug, Clone)]
pub struct PartitionedIndex<I> {
    /// Master-side delimiter array (cache-resident, tiny).
    pub delimiters: SortedArray,
    /// Slave-side structures, one per partition.
    pub parts: Vec<I>,
    /// Global rank of each partition's first key.
    pub base_ranks: Vec<u32>,
}

impl<I: RankIndex> PartitionedIndex<I> {
    /// Build from a sorted key set. `build_part(slice, part_index)`
    /// constructs each slave structure (allocating its own simulated
    /// addresses); `delim_base`/`cmp_cost_ns` configure the master array.
    pub fn build(
        keys: &[u32],
        parts: usize,
        delim_base: u64,
        cmp_cost_ns: f64,
        mut build_part: impl FnMut(&[u32], usize) -> I,
    ) -> Self {
        let p = Partitions::split(keys, parts);
        let structures =
            p.ranges.iter().enumerate().map(|(j, r)| build_part(&keys[r.clone()], j)).collect();
        Self {
            delimiters: SortedArray::new(p.delimiters.clone(), delim_base, cmp_cost_ns),
            parts: structures,
            base_ranks: p.base_ranks,
        }
    }

    /// Number of partitions.
    pub fn n_parts(&self) -> usize {
        self.parts.len()
    }

    /// Master-side dispatch: which partition owns `key`.
    pub fn dispatch<M: MemoryModel>(&self, key: u32, mem: &mut M) -> (usize, Cost) {
        let (r, ns) = self.delimiters.rank(key, mem);
        (r as usize, ns)
    }

    /// Slave-side lookup composing the global rank.
    pub fn rank_in<M: MemoryModel>(&self, part: usize, key: u32, mem: &mut M) -> (u32, Cost) {
        let (local, ns) = self.parts[part].rank(key, mem);
        (self.base_ranks[part] + local, ns)
    }

    /// Whole lookup through one memory model (tests / single-node use).
    pub fn rank<M: MemoryModel>(&self, key: u32, mem: &mut M) -> (u32, Cost) {
        let (p, c1) = self.dispatch(key, mem);
        let (r, c2) = self.rank_in(p, key, mem);
        (r, c1 + c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::oracle_rank;
    use dini_cache_sim::{AddressSpace, NullMemory};

    fn keys(n: u32) -> Vec<u32> {
        (0..n).map(|i| i * 3 + 1).collect()
    }

    #[test]
    fn split_is_contiguous_and_complete() {
        let ks = keys(1003);
        let p = Partitions::split(&ks, 10);
        assert_eq!(p.n_parts(), 10);
        assert_eq!(p.ranges.first().unwrap().start, 0);
        assert_eq!(p.ranges.last().unwrap().end, ks.len());
        for w in p.ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(p.delimiters.len(), 9);
    }

    #[test]
    fn dispatch_routes_to_owning_partition() {
        let ks = keys(1000);
        let p = Partitions::split(&ks, 7);
        for (j, r) in p.ranges.iter().enumerate() {
            for &k in &ks[r.clone()] {
                assert_eq!(p.dispatch(k), j, "key {k} should live in partition {j}");
            }
        }
        // Below the global minimum → partition 0.
        assert_eq!(p.dispatch(0), 0);
        // Above the global maximum → last partition.
        assert_eq!(p.dispatch(u32::MAX), 6);
    }

    #[test]
    fn partitioned_rank_equals_flat_rank() {
        let ks = keys(2500);
        let mut space = AddressSpace::new();
        let delim_base = space.alloc_lines(64);
        let pi = PartitionedIndex::build(&ks, 11, delim_base, 4.0, |slice, _| {
            let base = space.alloc_lines(slice.len() as u64 * 4);
            SortedArray::new(slice.to_vec(), base, 4.0)
        });
        for key in (0..8000u32).step_by(7) {
            let (r, _) = pi.rank(key, &mut NullMemory);
            assert_eq!(r, oracle_rank(&ks, key), "key {key}");
        }
    }

    #[test]
    fn single_partition_degenerates_gracefully() {
        let ks = keys(100);
        let pi = PartitionedIndex::build(&ks, 1, 0, 4.0, |slice, _| {
            SortedArray::new(slice.to_vec(), 4096, 4.0)
        });
        assert_eq!(pi.dispatch(50, &mut NullMemory).0, 0);
        assert_eq!(pi.rank(1, &mut NullMemory).0, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty partitions")]
    fn too_many_partitions_rejected() {
        Partitions::split(&[1, 2, 3], 4);
    }
}
