//! Cache-aligned sorted array with instrumented binary search.
//!
//! This is Method C-3's slave structure ("a simple sorted array … binary
//! search for key lookup") and also the master's partition-delimiter array.
//! The paper's key observation about it: the top ⌈log₂ n⌉ − L probe
//! targets of a binary search are few distinct lines and stay cached, so
//! a cache-resident array costs about `L` L1 misses per lookup — fewer
//! bytes and less cache pressure than any tree ("the n-ary trees of
//! Methods C-1 and C-2 occupy more space than a sorted array").

use crate::traits::{Cost, RankIndex};
use dini_cache_sim::{AccessKind, MemoryModel};
use dini_store::SharedKeys;

/// A sorted array of keys occupying a contiguous simulated address range.
///
/// The key storage is a [`SharedKeys`]: either an owned sort-built
/// vector or a zero-copy window into a mapped snapshot file. Every
/// access goes through one `&[u32]` view, so the probe path is
/// identical — and allocation-free — for both backings.
#[derive(Debug, Clone)]
pub struct SortedArray {
    keys: SharedKeys,
    /// Simulated base address (line-aligned).
    base: u64,
    /// Cost of one comparison, from MachineParams::cmp_cost_ns.
    cmp_cost_ns: f64,
}

impl SortedArray {
    /// Build over `keys` (must be sorted ascending; duplicates allowed but
    /// DINI workloads are unique). `base` is the simulated address of
    /// element 0; `cmp_cost_ns` the per-comparison compute charge.
    pub fn new(keys: Vec<u32>, base: u64, cmp_cost_ns: f64) -> Self {
        Self::from_shared(SharedKeys::owned(keys), base, cmp_cost_ns)
    }

    /// Build over an existing backing — an `Arc`-shared vector or a
    /// mapped snapshot window — without copying the keys.
    pub fn from_shared(keys: SharedKeys, base: u64, cmp_cost_ns: f64) -> Self {
        debug_assert!(keys.as_slice().windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        Self { keys, base, cmp_cost_ns }
    }

    /// The indexed keys.
    pub fn keys(&self) -> &[u32] {
        self.keys.as_slice()
    }

    /// The shared backing (clone to share without copying keys).
    pub fn shared_keys(&self) -> &SharedKeys {
        &self.keys
    }

    /// Simulated base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Simulated address of element `i`.
    #[inline]
    fn addr_of(&self, i: usize) -> u64 {
        self.base + (i as u64) * 4
    }

    /// Copy every key in the inclusive range `[lo, hi]` into `out`
    /// (cleared first); returns the cost. Positioning is two binary
    /// searches; the copy itself is one streaming read — the access shape
    /// a range-partitioned database scan produces.
    pub fn scan_range<M: MemoryModel>(
        &self,
        lo: u32,
        hi: u32,
        out: &mut Vec<u32>,
        mem: &mut M,
    ) -> Cost {
        assert!(lo <= hi, "scan_range requires lo <= hi");
        out.clear();
        let (hi_rank, c1) = self.rank(hi, mem);
        let (lo_rank, c2) = if lo == 0 { (0, 0.0) } else { self.rank(lo - 1, mem) };
        let (start, end) = (lo_rank as usize, hi_rank as usize);
        let mut ns = c1 + c2;
        if end > start {
            ns +=
                mem.touch(self.addr_of(start), ((end - start) * 4) as u32, AccessKind::StreamRead);
            out.extend_from_slice(&self.keys.as_slice()[start..end]);
        }
        ns
    }
}

impl RankIndex for SortedArray {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn footprint_bytes(&self) -> u64 {
        self.keys.len() as u64 * 4
    }

    /// Classic binary search for the upper bound, touching each probed
    /// element. Hot top-of-search lines hit in cache; the bottom ~L probes
    /// are the misses the paper's Equation 8 charges as
    /// `L × (Comp_Cost + B1_Miss_Penalty)`.
    fn rank<M: MemoryModel>(&self, key: u32, mem: &mut M) -> (u32, Cost) {
        let keys = self.keys.as_slice();
        let mut lo = 0usize;
        let mut hi = keys.len();
        let mut ns = 0.0;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            ns += mem.touch(self.addr_of(mid), 4, AccessKind::Read);
            ns += mem.compute(self.cmp_cost_ns);
            // SAFETY-free hot path: mid < hi <= len by construction.
            if keys[mid] <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo as u32, ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::oracle_rank;
    use dini_cache_sim::{CountingMemory, MachineParams, NullMemory, SimMemory};

    fn arr(n: u32) -> SortedArray {
        // Keys 10, 20, 30, … so gaps exist for between-key queries.
        SortedArray::new((1..=n).map(|i| i * 10).collect(), 4096, 4.0)
    }

    #[test]
    fn rank_matches_oracle_on_gaps_and_hits() {
        let a = arr(100);
        let mut m = NullMemory;
        for key in [0u32, 5, 10, 15, 505, 999, 1000, 1001, u32::MAX] {
            let (r, _) = a.rank(key, &mut m);
            assert_eq!(r, oracle_rank(a.keys(), key), "key {key}");
        }
    }

    #[test]
    fn empty_array_ranks_zero() {
        let a = SortedArray::new(vec![], 4096, 4.0);
        assert_eq!(a.rank(42, &mut NullMemory).0, 0);
        assert_eq!(a.len(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let a = arr(1024);
        let mut m = CountingMemory::default();
        a.rank(515, &mut m);
        // ⌈log2(1024+1)⌉ = 11 probes max for upper-bound search.
        assert!(m.random_touches() <= 11, "{} probes", m.random_touches());
        assert!(m.random_touches() >= 10);
    }

    #[test]
    fn probes_stay_inside_the_array_region() {
        let a = arr(1000);
        let mut m = CountingMemory::default();
        a.rank(777, &mut m);
        for (addr, _, _) in &m.accesses {
            assert!(*addr >= 4096 && *addr < 4096 + 1000 * 4);
        }
    }

    #[test]
    fn cache_resident_array_costs_little_after_warmup() {
        // 32 K keys = 128 KB fits the 512 KB L2: after one warm pass,
        // lookups never touch memory (the paper's Method C premise).
        let keys: Vec<u32> = (0..32_768u32).map(|i| i * 2).collect();
        let a = SortedArray::new(keys, 1 << 20, 4.0);
        let p = MachineParams::pentium_iii();
        let mut m = SimMemory::new(p);
        for key in (0..65_536u32).step_by(17) {
            a.rank(key, &mut m);
        }
        m.reset_stats();
        for key in (0..65_536u32).step_by(13) {
            a.rank(key, &mut m);
        }
        assert_eq!(
            m.stats().memory_accesses,
            0,
            "cache-resident partition must not touch RAM in steady state"
        );
    }

    #[test]
    fn range_count_matches_oracle() {
        let a = arr(100); // keys 10..=1000 step 10
        let mut m = NullMemory;
        assert_eq!(a.range_count(0, u32::MAX, &mut m).0, 100);
        assert_eq!(a.range_count(10, 10, &mut m).0, 1);
        assert_eq!(a.range_count(11, 19, &mut m).0, 0);
        assert_eq!(a.range_count(15, 35, &mut m).0, 2); // 20, 30
        assert_eq!(a.range_count(0, 9, &mut m).0, 0);
    }

    #[test]
    fn scan_range_returns_exact_keys() {
        let a = arr(50);
        let mut out = Vec::new();
        a.scan_range(95, 215, &mut out, &mut NullMemory);
        assert_eq!(out, vec![100, 110, 120, 130, 140, 150, 160, 170, 180, 190, 200, 210]);
        a.scan_range(101, 109, &mut out, &mut NullMemory);
        assert!(out.is_empty());
        a.scan_range(0, u32::MAX, &mut out, &mut NullMemory);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn scan_range_is_streaming() {
        use dini_cache_sim::CountingMemory;
        let a = arr(10_000);
        let mut out = Vec::new();
        let mut m = CountingMemory::default();
        a.scan_range(1_000, 50_000, &mut out, &mut m);
        // Two binary searches of random touches; the body is one stream.
        assert!(m.random_touches() <= 30);
        let streamed: u32 =
            m.accesses.iter().filter(|(_, _, k)| k.is_stream()).map(|(_, len, _)| *len).sum();
        assert_eq!(streamed as usize, out.len() * 4);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_range_panics() {
        arr(10).range_count(5, 4, &mut NullMemory);
    }

    #[test]
    fn batch_rank_agrees_with_single() {
        let a = arr(513);
        let keys: Vec<u32> = (0..2000).map(|i| i * 3 + 1).collect();
        let mut out = Vec::new();
        a.rank_batch(&keys, &mut out, &mut NullMemory);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(out[i], a.rank(k, &mut NullMemory).0);
        }
    }
}
