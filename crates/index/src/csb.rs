//! CSB+-layout sorted n-ary tree (Rao & Ross, SIGMOD 2000).
//!
//! Each node occupies exactly one cache line and stores up to `k` keys plus
//! a *single* first-child index; the children of a node are contiguous in
//! the arena, so child `j` is `first_child + j`. On the paper's Pentium III
//! a 32-byte line holds 7 four-byte keys + one index ⇒ fan-out 8, which is
//! exactly what yields the paper's Table 1 value `T = 7` levels for 327 k
//! keys. This structure serves Methods A and B (replicated on every node)
//! and Method C-1 (one cache-resident partition per slave).

use crate::traits::{Cost, RankIndex};
use dini_cache_sim::{AccessKind, MemoryModel};
use std::ops::Range;

/// A CSB+ n-ary tree over a sorted key set.
#[derive(Debug, Clone)]
pub struct CsbTree {
    /// Separator keys per internal node (7 on the Pentium III).
    k: u32,
    /// Entries per leaf node. Leaves carry `(key, record-id)` pairs, so a
    /// 32-byte line holds 4 of them — this is what makes the paper's
    /// 327 k-key tree 3.2 MB rather than 1.7 MB.
    leaf_entries: u32,
    /// Key-arena slots per node (`max(k, leaf_entries)`).
    stride: u32,
    /// Simulated node size == cache-line size.
    line_bytes: u64,
    /// Simulated base address of node 0 (the root).
    base: u64,
    /// Cost to search within one node (Table 2's `Comp Cost Node`).
    comp_cost_node_ns: f64,
    n_keys: usize,
    /// Flat key arena: node `i` keys live at `i*k .. i*k + nkeys[i]`.
    keys: Vec<u32>,
    /// Number of valid keys (leaves) / separators (internal) per node.
    nkeys: Vec<u16>,
    /// Internal nodes: arena index of the first child.
    /// Leaves: base rank (index of the leaf's first key in the sorted set).
    first_child: Vec<u32>,
    /// Node-index range of each level, root level first.
    levels: Vec<Range<u32>>,
}

impl CsbTree {
    /// Build over sorted `keys` with leaves as dense as internal nodes
    /// (`leaf_entries == k`). `k` keys per node (fan-out `k+1`),
    /// `line_bytes` simulated node size, `base` the root's address,
    /// `comp_cost_node_ns` the per-node search charge.
    pub fn new(keys: &[u32], k: u32, line_bytes: u64, base: u64, comp_cost_node_ns: f64) -> Self {
        Self::with_leaf_entries(keys, k, k, line_bytes, base, comp_cost_node_ns)
    }

    /// Build with an explicit leaf capacity. The paper's trees store
    /// `(key, record-id)` pairs at the leaves — 4 entries per 32-byte line
    /// versus 7 separator keys per internal node — which is what produces
    /// Table 1's 3.2 MB tree and `L = 6` partition trees.
    pub fn with_leaf_entries(
        keys: &[u32],
        k: u32,
        leaf_entries: u32,
        line_bytes: u64,
        base: u64,
        comp_cost_node_ns: f64,
    ) -> Self {
        assert!(k >= 1, "need at least one key per node");
        assert!(leaf_entries >= 1, "need at least one entry per leaf");
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        let n_keys = keys.len();
        let fanout = k as usize + 1;
        let stride = k.max(leaf_entries);

        if n_keys == 0 {
            return Self {
                k,
                leaf_entries,
                stride,
                line_bytes,
                base,
                comp_cost_node_ns,
                n_keys,
                keys: Vec::new(),
                nkeys: Vec::new(),
                first_child: Vec::new(),
                levels: Vec::new(),
            };
        }

        // --- Build levels bottom-up (leaves first). ---
        // Each entry: (separator keys, payload, rep) where payload is
        // base-rank for leaves / first-child-within-next-level for internal,
        // and rep is the max key covered (parent separator material).
        struct BuildNode {
            seps: Vec<u32>,
            payload: u32,
            rep: u32,
        }
        let mut built_levels: Vec<Vec<BuildNode>> = Vec::new();

        // Leaves.
        let le = leaf_entries as usize;
        let mut leaves = Vec::with_capacity(n_keys.div_ceil(le));
        for (j, chunk) in keys.chunks(le).enumerate() {
            leaves.push(BuildNode {
                seps: chunk.to_vec(),
                payload: (j * le) as u32,
                rep: *chunk.last().expect("non-empty chunk"),
            });
        }
        built_levels.push(leaves);

        // Internal levels until a single root.
        while built_levels.last().expect("at least leaves").len() > 1 {
            let child_level = built_levels.last().expect("non-empty");
            let mut parents = Vec::with_capacity(child_level.len().div_ceil(fanout));
            let mut child_idx = 0u32;
            for group in child_level.chunks(fanout) {
                // c children need c-1 separators: the reps of all but the
                // last child. Routing: first separator >= key wins.
                let seps: Vec<u32> = group[..group.len() - 1].iter().map(|c| c.rep).collect();
                parents.push(BuildNode {
                    seps,
                    payload: child_idx, // index within child level
                    rep: group.last().expect("non-empty group").rep,
                });
                child_idx += group.len() as u32;
            }
            built_levels.push(parents);
        }
        built_levels.reverse(); // root level first

        // --- Flatten into the arena, root first. ---
        let total_nodes: usize = built_levels.iter().map(|l| l.len()).sum();
        let mut flat_keys = vec![u32::MAX; total_nodes * stride as usize];
        let mut nkeys = vec![0u16; total_nodes];
        let mut first_child = vec![0u32; total_nodes];
        let mut levels = Vec::with_capacity(built_levels.len());
        let mut offset = 0u32;
        let mut level_offsets = Vec::with_capacity(built_levels.len());
        for level in &built_levels {
            level_offsets.push(offset);
            levels.push(offset..offset + level.len() as u32);
            offset += level.len() as u32;
        }
        let n_levels = built_levels.len();
        for (li, level) in built_levels.iter().enumerate() {
            let level_off = level_offsets[li];
            let is_leaf_level = li == n_levels - 1;
            for (j, node) in level.iter().enumerate() {
                let idx = (level_off + j as u32) as usize;
                nkeys[idx] = node.seps.len() as u16;
                flat_keys[idx * stride as usize..idx * stride as usize + node.seps.len()]
                    .copy_from_slice(&node.seps);
                first_child[idx] = if is_leaf_level {
                    node.payload // base rank
                } else {
                    level_offsets[li + 1] + node.payload
                };
            }
        }

        Self {
            k,
            leaf_entries,
            stride,
            line_bytes,
            base,
            comp_cost_node_ns,
            n_keys,
            keys: flat_keys,
            nkeys,
            first_child,
            levels,
        }
    }

    /// Separator keys per internal node.
    pub fn keys_per_node(&self) -> u32 {
        self.k
    }

    /// Entries per leaf node.
    pub fn leaf_entries(&self) -> u32 {
        self.leaf_entries
    }

    /// Number of levels `T`.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Node-index ranges per level (root level first).
    pub fn levels(&self) -> &[Range<u32>] {
        &self.levels
    }

    /// Total nodes in the arena.
    pub fn n_nodes(&self) -> usize {
        self.nkeys.len()
    }

    /// Simulated address of node `idx`.
    #[inline]
    pub fn node_addr(&self, idx: u32) -> u64 {
        self.base + idx as u64 * self.line_bytes
    }

    /// Simulated node size (== line size).
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Per-node search charge.
    pub fn comp_cost_node_ns(&self) -> f64 {
        self.comp_cost_node_ns
    }

    /// Which level a node index belongs to.
    pub fn level_of(&self, idx: u32) -> usize {
        self.levels.iter().position(|r| r.contains(&idx)).expect("node index out of range")
    }

    /// Is `idx` a leaf?
    #[inline]
    pub fn is_leaf(&self, idx: u32) -> bool {
        let leaf_range = self.levels.last().expect("non-empty tree");
        leaf_range.contains(&idx)
    }

    /// Search within node `idx`: returns the child slot (internal) or the
    /// in-leaf upper-bound count (leaf). Also charges `mem`.
    #[inline]
    fn search_node<M: MemoryModel>(&self, idx: u32, key: u32, mem: &mut M) -> (u32, Cost) {
        let mut ns = mem.touch(self.node_addr(idx), self.line_bytes as u32, AccessKind::Read);
        ns += mem.compute(self.comp_cost_node_ns);
        let stride = self.stride as usize;
        let nk = self.nkeys[idx as usize] as usize;
        let seps = &self.keys[idx as usize * stride..idx as usize * stride + nk];
        // Upper-bound position: number of separators/keys <= key.
        let slot = seps.partition_point(|&s| s <= key) as u32;
        (slot, ns)
    }

    /// Descend one step from internal node `idx` toward `key`.
    /// Returns `(child_idx, cost)`.
    #[inline]
    pub fn descend<M: MemoryModel>(&self, idx: u32, key: u32, mem: &mut M) -> (u32, Cost) {
        debug_assert!(!self.is_leaf(idx));
        let (slot, ns) = self.search_node(idx, key, mem);
        // Internal routing: separator j = max key of child j, so the child
        // is the first slot whose separator is >= key — i.e. the number of
        // separators strictly below… with `<= key` partition_point the slot
        // already points at the correct child (ties descend right, matching
        // upper-bound rank semantics).
        (self.first_child[idx as usize] + slot, ns)
    }

    /// Rank within leaf `idx` (global rank = leaf base + in-leaf count).
    #[inline]
    pub fn leaf_rank<M: MemoryModel>(&self, idx: u32, key: u32, mem: &mut M) -> (u32, Cost) {
        debug_assert!(self.is_leaf(idx));
        let (count, ns) = self.search_node(idx, key, mem);
        (self.first_child[idx as usize] + count, ns)
    }

    /// Contiguous descendant node-index ranges of `node`, one per level
    /// starting at `node`'s own level. Valid because CSB+ children are
    /// contiguous and sibling subtrees are ordered.
    pub fn descendant_ranges(&self, node: u32) -> Vec<Range<u32>> {
        let start_level = self.level_of(node);
        let mut ranges = Vec::with_capacity(self.levels.len() - start_level);
        ranges.push(node..node + 1);
        for li in start_level..self.levels.len() - 1 {
            let cur = ranges.last().expect("non-empty").clone();
            let next_level = &self.levels[li + 1];
            let first = self.first_child[cur.start as usize];
            // The children of the last node in `cur` end where the next
            // node's children begin (or at the end of the next level).
            let last = if cur.end < self.levels[li].end {
                self.first_child[cur.end as usize]
            } else {
                next_level.end
            };
            ranges.push(first..last);
        }
        ranges
    }

    /// Number of nodes in the subtree rooted at `node` spanning `depth`
    /// levels (inclusive of the root level).
    pub fn subtree_nodes(&self, node: u32, depth: usize) -> u64 {
        self.descendant_ranges(node).iter().take(depth).map(|r| (r.end - r.start) as u64).sum()
    }

    /// Bytes of a subtree of `depth` levels rooted at `node`.
    pub fn subtree_bytes(&self, node: u32, depth: usize) -> u64 {
        self.subtree_nodes(node, depth) * self.line_bytes
    }
}

impl RankIndex for CsbTree {
    fn len(&self) -> usize {
        self.n_keys
    }

    fn footprint_bytes(&self) -> u64 {
        self.n_nodes() as u64 * self.line_bytes
    }

    fn rank<M: MemoryModel>(&self, key: u32, mem: &mut M) -> (u32, Cost) {
        if self.n_keys == 0 {
            return (0, 0.0);
        }
        let mut idx = 0u32; // root
        let mut ns = 0.0;
        while !self.is_leaf(idx) {
            let (child, c) = self.descend(idx, key, mem);
            idx = child;
            ns += c;
        }
        let (rank, c) = self.leaf_rank(idx, key, mem);
        (rank, ns + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::oracle_rank;
    use dini_cache_sim::{CountingMemory, MachineParams, NullMemory, SimMemory};

    fn tree(n: u32) -> (Vec<u32>, CsbTree) {
        let keys: Vec<u32> = (1..=n).map(|i| i * 10).collect();
        let t = CsbTree::new(&keys, 7, 32, 1 << 16, 30.0);
        (keys, t)
    }

    #[test]
    fn rank_matches_oracle_exhaustively_small() {
        let (keys, t) = tree(200);
        for key in 0..=2_100u32 {
            let (r, _) = t.rank(key, &mut NullMemory);
            assert_eq!(r, oracle_rank(&keys, key), "key {key}");
        }
    }

    #[test]
    fn single_leaf_tree() {
        let keys = vec![5u32, 7, 9];
        let t = CsbTree::new(&keys, 7, 32, 0, 30.0);
        assert_eq!(t.n_levels(), 1);
        assert_eq!(t.rank(6, &mut NullMemory).0, 1);
        assert_eq!(t.rank(9, &mut NullMemory).0, 3);
    }

    #[test]
    fn empty_tree() {
        let t = CsbTree::new(&[], 7, 32, 0, 30.0);
        assert_eq!(t.rank(1, &mut NullMemory).0, 0);
        assert_eq!(t.n_levels(), 0);
        assert_eq!(t.footprint_bytes(), 0);
    }

    #[test]
    fn paper_tree_has_seven_levels() {
        // Table 1: 327 k keys, 32-byte nodes (7 keys, fan-out 8) → T = 7.
        let keys: Vec<u32> = (0..327_680u32).map(|i| i.wrapping_mul(13001)).collect();
        let mut keys = keys;
        keys.sort_unstable();
        keys.dedup();
        let t = CsbTree::new(&keys, 7, 32, 0, 30.0);
        assert_eq!(t.n_levels(), 7, "paper's T");
    }

    #[test]
    fn lookup_touches_one_node_per_level() {
        let (_, t) = tree(10_000);
        let mut m = CountingMemory::default();
        t.rank(54_321, &mut m);
        assert_eq!(m.random_touches(), t.n_levels());
        // And each touch lies inside the arena.
        let hi = t.node_addr(t.n_nodes() as u32 - 1) + 32;
        for (addr, _, _) in &m.accesses {
            assert!(*addr >= 1 << 16 && *addr < hi);
        }
    }

    #[test]
    fn children_are_contiguous() {
        let (_, t) = tree(5_000);
        for level in 0..t.n_levels() - 1 {
            let range = t.levels()[level].clone();
            let mut prev_end: Option<u32> = None;
            for idx in range {
                let fc = t.first_child[idx as usize];
                if let Some(pe) = prev_end {
                    assert_eq!(fc, pe, "children of consecutive nodes must abut");
                }
                prev_end = Some(fc + t.nkeys[idx as usize] as u32 + 1);
            }
        }
    }

    #[test]
    fn descendant_ranges_cover_leaves_exactly() {
        let (_, t) = tree(5_000);
        // Ranges of the root must cover each full level.
        let ranges = t.descendant_ranges(0);
        assert_eq!(ranges.len(), t.n_levels());
        for (r, l) in ranges.iter().zip(t.levels()) {
            assert_eq!(r, l);
        }
        // Sibling subtrees at level 1 partition every lower level.
        let l1 = t.levels()[1].clone();
        let mut cover: Vec<Range<u32>> = Vec::new();
        for node in l1.clone() {
            let rs = t.descendant_ranges(node);
            cover.push(rs.last().expect("non-empty").clone());
        }
        assert_eq!(cover.first().expect("non-empty").start, t.levels().last().unwrap().start);
        assert_eq!(cover.last().expect("non-empty").end, t.levels().last().unwrap().end);
        for w in cover.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn out_of_cache_tree_misses_once_per_lower_level() {
        // A tree bigger than L2 must, in steady state, miss roughly once
        // per lookup per non-resident level — the paper's Method A story.
        let keys: Vec<u32> = (0..300_000u32).map(|i| i * 7).collect();
        let t = CsbTree::new(&keys, 7, 32, 1 << 24, 30.0);
        assert!(t.footprint_bytes() > 512 * 1024);
        let p = MachineParams::pentium_iii();
        let mut m = SimMemory::new(p);
        // Random-ish lookups *within the indexed key range* (keys go up to
        // 300_000 * 7), so every level of the tree is exercised.
        let span = 300_000u64 * 7;
        for i in 0..20_000u64 {
            t.rank((i.wrapping_mul(2_654_435_761) % span) as u32, &mut m);
        }
        m.reset_stats();
        let n = 20_000u64;
        for i in 0..n {
            t.rank(((i.wrapping_mul(40_503) + 977) * 104_729 % span) as u32, &mut m);
        }
        let misses_per_lookup = m.stats().memory_accesses as f64 / n as f64;
        let _ = span;
        assert!(
            misses_per_lookup > 1.0 && misses_per_lookup < 4.0,
            "expected ~2-3 steady-state misses for a 1.3 MB tree, got {misses_per_lookup}"
        );
    }

    #[test]
    fn footprint_scales_with_keys() {
        let (_, small) = tree(1_000);
        let (_, large) = tree(100_000);
        assert!(large.footprint_bytes() > 50 * small.footprint_bytes());
    }
}
