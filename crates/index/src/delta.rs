//! Updatable sorted index: a static main array plus a small sorted delta.
//!
//! The paper's index is static — partition delimiters are built once.
//! Its motivating applications (sensor tracking, pub/sub subscription
//! tables, packet routing) are not: keys come and go. [`DeltaArray`] adds
//! updates in the way that preserves the paper's cache economics: the big
//! main array stays read-only and cache-resident; inserts and deletes
//! accumulate in two small sorted side arrays ("delta"); ranks compose as
//! `main + inserts − deletes`; when the delta outgrows its budget it is
//! merged into a fresh main array with one streaming pass (billed at W1,
//! exactly the access pattern the paper says RAM is good at).
//!
//! This is the classic log-structured/differential-file design (also how
//! column stores bolt updates onto sorted runs), specialised to rank
//! queries.

use crate::sorted_array::SortedArray;
use crate::traits::{Cost, RankIndex};
use dini_cache_sim::{AccessKind, MemoryModel};
use dini_store::SharedKeys;

/// A rank index supporting inserts and deletes via a merge-on-threshold
/// delta buffer.
#[derive(Debug, Clone)]
pub struct DeltaArray {
    main: SortedArray,
    /// Keys inserted since the last merge (sorted, unique, disjoint from
    /// main).
    inserts: Vec<u32>,
    /// Keys deleted since the last merge (sorted, unique, all present in
    /// main).
    deletes: Vec<u32>,
    /// Simulated base address of the insert delta region.
    ins_base: u64,
    /// Simulated base address of the delete delta region.
    del_base: u64,
    cmp_cost_ns: f64,
    /// Merge when `inserts.len() + deletes.len()` exceeds this.
    merge_threshold: usize,
}

/// Instrumented upper-bound binary search over a small sorted slice.
fn rank_in<M: MemoryModel>(
    slice: &[u32],
    base: u64,
    key: u32,
    cmp_cost_ns: f64,
    mem: &mut M,
) -> (u32, Cost) {
    let mut lo = 0usize;
    let mut hi = slice.len();
    let mut ns = 0.0;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        ns += mem.touch(base + mid as u64 * 4, 4, AccessKind::Read);
        ns += mem.compute(cmp_cost_ns);
        if slice[mid] <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo as u32, ns)
}

/// Exact-membership test on a sorted slice (uninstrumented helper for
/// update-path validation).
fn contains_sorted(slice: &[u32], key: u32) -> bool {
    slice.binary_search(&key).is_ok()
}

impl DeltaArray {
    /// Build over sorted unique `keys`. `base` addresses the main array;
    /// the delta regions are placed immediately after it (each sized for
    /// `merge_threshold` keys).
    pub fn new(keys: Vec<u32>, base: u64, cmp_cost_ns: f64, merge_threshold: usize) -> Self {
        Self::from_parts(
            SharedKeys::owned(keys),
            Vec::new(),
            Vec::new(),
            base,
            cmp_cost_ns,
            merge_threshold,
        )
    }

    /// Rebuild from a snapshot decomposition: a shared (possibly mapped)
    /// main backing plus the pending deltas persisted alongside it. The
    /// restart path uses this to resume *exactly* where the checkpoint
    /// left off — same main array (zero-copy), same un-merged deltas —
    /// without sorting anything.
    ///
    /// Invariants (validated by the snapshot reader, debug-asserted
    /// here): all three arrays sorted unique, `inserts` disjoint from
    /// main, `deletes` ⊆ main.
    pub fn from_parts(
        keys: SharedKeys,
        inserts: Vec<u32>,
        deletes: Vec<u32>,
        base: u64,
        cmp_cost_ns: f64,
        merge_threshold: usize,
    ) -> Self {
        assert!(merge_threshold >= 1);
        debug_assert!(
            keys.as_slice().windows(2).all(|w| w[0] < w[1]),
            "keys must be sorted unique"
        );
        debug_assert!(inserts.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(deletes.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(inserts.iter().all(|k| keys.as_slice().binary_search(k).is_err()));
        debug_assert!(deletes.iter().all(|k| keys.as_slice().binary_search(k).is_ok()));
        let main_bytes = keys.len() as u64 * 4;
        let delta_bytes = merge_threshold as u64 * 4;
        Self {
            main: SortedArray::from_shared(keys, base, cmp_cost_ns),
            inserts,
            deletes,
            ins_base: base + main_bytes,
            del_base: base + main_bytes + delta_bytes,
            cmp_cost_ns,
            merge_threshold,
        }
    }

    /// The main array's shared backing (for snapshot writers that want
    /// to persist without copying, and tests asserting mapped serving).
    pub fn main_shared(&self) -> &SharedKeys {
        self.main.shared_keys()
    }

    /// Whether `key` is currently in the index.
    pub fn contains(&self, key: u32) -> bool {
        if contains_sorted(&self.inserts, key) {
            return true;
        }
        contains_sorted(self.main.keys(), key) && !contains_sorted(&self.deletes, key)
    }

    /// Insert `key`; returns `false` (and charges nothing extra) if it was
    /// already present. Billed: the membership probes plus a streaming
    /// shift of the insert delta's tail.
    pub fn insert<M: MemoryModel>(&mut self, key: u32, mem: &mut M) -> (bool, Cost) {
        let mut ns = 0.0;
        // Was it deleted? Resurrect by removing the tombstone.
        if let Ok(pos) = self.deletes.binary_search(&key) {
            let tail = (self.deletes.len() - pos) as u32 * 4;
            ns += mem.touch(self.del_base + pos as u64 * 4, tail.max(4), AccessKind::StreamWrite);
            self.deletes.remove(pos);
            return (true, ns);
        }
        let (ub, c) = rank_in(self.main.keys(), self.main.base(), key, self.cmp_cost_ns, mem);
        ns += c;
        // Membership falls out of the upper bound for free: `ub` counts
        // keys ≤ `key`, so `key` is present iff it sits just below the
        // bound. One billed probe — re-searching the same array through
        // an uninstrumented helper would do the work twice and bill it
        // zero times.
        if ub > 0 && self.main.keys()[ub as usize - 1] == key {
            return (false, ns);
        }
        match self.inserts.binary_search(&key) {
            Ok(_) => (false, ns),
            Err(pos) => {
                // Shift the tail one slot right: a streaming write.
                let tail = (self.inserts.len() - pos) as u32 * 4;
                ns +=
                    mem.touch(self.ins_base + pos as u64 * 4, tail.max(4), AccessKind::StreamWrite);
                self.inserts.insert(pos, key);
                (true, ns)
            }
        }
    }

    /// Delete `key`; returns `false` if it was not present.
    pub fn delete<M: MemoryModel>(&mut self, key: u32, mem: &mut M) -> (bool, Cost) {
        let mut ns = 0.0;
        if let Ok(pos) = self.inserts.binary_search(&key) {
            let tail = (self.inserts.len() - pos) as u32 * 4;
            ns += mem.touch(self.ins_base + pos as u64 * 4, tail.max(4), AccessKind::StreamWrite);
            self.inserts.remove(pos);
            return (true, ns);
        }
        let (ub, c) = rank_in(self.main.keys(), self.main.base(), key, self.cmp_cost_ns, mem);
        ns += c;
        // Same upper-bound membership derivation as `insert`: one billed
        // probe over the main array, no free second search.
        if !(ub > 0 && self.main.keys()[ub as usize - 1] == key) {
            return (false, ns);
        }
        match self.deletes.binary_search(&key) {
            Ok(_) => (false, ns),
            Err(pos) => {
                let tail = (self.deletes.len() - pos) as u32 * 4;
                ns +=
                    mem.touch(self.del_base + pos as u64 * 4, tail.max(4), AccessKind::StreamWrite);
                self.deletes.insert(pos, key);
                (true, ns)
            }
        }
    }

    /// Pending delta entries (inserts + tombstones).
    pub fn delta_len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// The static main array (sorted unique), excluding pending deltas.
    ///
    /// Together with [`pending_inserts`](Self::pending_inserts) and
    /// [`pending_deletes`](Self::pending_deletes) this exposes the exact
    /// decomposition a snapshot publisher needs: serve-layer writers fold
    /// churn through a `DeltaArray` and ship `(main, inserts, deletes)`
    /// to readers as an immutable overlay.
    pub fn main_keys(&self) -> &[u32] {
        self.main.keys()
    }

    /// Keys inserted since the last merge (sorted, unique, disjoint from
    /// the main array).
    pub fn pending_inserts(&self) -> &[u32] {
        &self.inserts
    }

    /// Keys deleted since the last merge (sorted, unique, all present in
    /// the main array).
    pub fn pending_deletes(&self) -> &[u32] {
        &self.deletes
    }

    /// Whether the delta has outgrown its budget and a merge is due.
    pub fn needs_merge(&self) -> bool {
        self.delta_len() > self.merge_threshold
    }

    /// Merge the delta into a fresh main array with one streaming pass.
    /// Billed: a streaming read of main + delta and a streaming write of
    /// the new array — the sequential pattern the paper bills at W1.
    pub fn merge<M: MemoryModel>(&mut self, mem: &mut M) -> Cost {
        let mut ns = 0.0;
        let old_bytes = (self.main.len() + self.delta_len()) as u32 * 4;
        ns += mem.touch(self.main.base(), old_bytes.max(4), AccessKind::StreamRead);

        let mut merged = Vec::with_capacity(self.main.len() + self.inserts.len());
        let mut del = self.deletes.iter().copied().peekable();
        let mut ins = self.inserts.iter().copied().peekable();
        for &k in self.main.keys() {
            while ins.peek().is_some_and(|&i| i < k) {
                merged.push(ins.next().expect("peeked"));
            }
            if del.peek() == Some(&k) {
                del.next();
                continue;
            }
            merged.push(k);
        }
        merged.extend(ins);

        let new_bytes = merged.len() as u32 * 4;
        ns += mem.touch(self.main.base(), new_bytes.max(4), AccessKind::StreamWrite);

        let base = self.main.base();
        let main_bytes = merged.len() as u64 * 4;
        self.main = SortedArray::new(merged, base, self.cmp_cost_ns);
        self.inserts.clear();
        self.deletes.clear();
        self.ins_base = base + main_bytes;
        self.del_base = base + main_bytes + self.merge_threshold as u64 * 4;
        ns
    }
}

impl RankIndex for DeltaArray {
    fn len(&self) -> usize {
        self.main.len() + self.inserts.len() - self.deletes.len()
    }

    fn footprint_bytes(&self) -> u64 {
        self.main.footprint_bytes() + (self.delta_len() as u64) * 4
    }

    fn rank<M: MemoryModel>(&self, key: u32, mem: &mut M) -> (u32, Cost) {
        let (rm, c1) = self.main.rank(key, mem);
        let (ri, c2) = rank_in(&self.inserts, self.ins_base, key, self.cmp_cost_ns, mem);
        let (rd, c3) = rank_in(&self.deletes, self.del_base, key, self.cmp_cost_ns, mem);
        (rm + ri - rd, c1 + c2 + c3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::oracle_rank;
    use dini_cache_sim::NullMemory;

    fn oracle_of(set: &std::collections::BTreeSet<u32>, key: u32) -> u32 {
        set.iter().take_while(|&&k| k <= key).count() as u32
    }

    #[test]
    fn fresh_index_matches_plain_array() {
        let keys: Vec<u32> = (1..=500).map(|i| i * 4).collect();
        let d = DeltaArray::new(keys.clone(), 4096, 1.0, 64);
        for q in (0..2_100).step_by(3) {
            assert_eq!(d.rank(q, &mut NullMemory).0, oracle_rank(&keys, q));
        }
    }

    #[test]
    fn inserts_show_up_in_ranks() {
        let mut d = DeltaArray::new(vec![10, 20, 30], 0, 1.0, 16);
        let (ok, _) = d.insert(15, &mut NullMemory);
        assert!(ok);
        assert_eq!(d.len(), 4);
        assert_eq!(d.rank(14, &mut NullMemory).0, 1);
        assert_eq!(d.rank(15, &mut NullMemory).0, 2);
        assert_eq!(d.rank(30, &mut NullMemory).0, 4);
        assert!(d.contains(15));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut d = DeltaArray::new(vec![10, 20, 30], 0, 1.0, 16);
        assert!(!d.insert(20, &mut NullMemory).0, "key in main");
        d.insert(15, &mut NullMemory);
        assert!(!d.insert(15, &mut NullMemory).0, "key in delta");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn deletes_show_up_in_ranks() {
        let mut d = DeltaArray::new(vec![10, 20, 30], 0, 1.0, 16);
        assert!(d.delete(20, &mut NullMemory).0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.rank(25, &mut NullMemory).0, 1);
        assert!(!d.contains(20));
        assert!(!d.delete(20, &mut NullMemory).0, "double delete");
        assert!(!d.delete(99, &mut NullMemory).0, "never present");
    }

    #[test]
    fn delete_of_pending_insert_cancels() {
        let mut d = DeltaArray::new(vec![10, 30], 0, 1.0, 16);
        d.insert(20, &mut NullMemory);
        assert!(d.delete(20, &mut NullMemory).0);
        assert_eq!(d.delta_len(), 0, "insert+delete should cancel out");
        assert_eq!(d.rank(25, &mut NullMemory).0, 1);
    }

    #[test]
    fn insert_resurrects_tombstone() {
        let mut d = DeltaArray::new(vec![10, 20, 30], 0, 1.0, 16);
        d.delete(20, &mut NullMemory);
        assert!(d.insert(20, &mut NullMemory).0);
        assert!(d.contains(20));
        assert_eq!(d.delta_len(), 0);
        assert_eq!(d.rank(20, &mut NullMemory).0, 2);
    }

    #[test]
    fn merge_preserves_semantics_and_clears_delta() {
        use std::collections::BTreeSet;
        let keys: Vec<u32> = (1..=100).map(|i| i * 10).collect();
        let mut set: BTreeSet<u32> = keys.iter().copied().collect();
        let mut d = DeltaArray::new(keys, 1 << 16, 1.0, 8);

        // Mixed update stream (deterministic).
        for i in 0..50u32 {
            let k = (i.wrapping_mul(2_654_435_761)) % 1_100;
            if i % 3 == 0 {
                if d.delete(k, &mut NullMemory).0 {
                    set.remove(&k);
                }
            } else if d.insert(k, &mut NullMemory).0 {
                set.insert(k);
            }
            if d.needs_merge() {
                let ns = d.merge(&mut NullMemory);
                assert!(ns >= 0.0);
                assert_eq!(d.delta_len(), 0);
            }
            assert_eq!(d.len(), set.len(), "after op {i}");
        }
        for q in (0..1_200).step_by(7) {
            assert_eq!(d.rank(q, &mut NullMemory).0, oracle_of(&set, q), "rank({q})");
        }
    }

    #[test]
    fn accessors_expose_snapshot_decomposition() {
        let mut d = DeltaArray::new(vec![10, 20, 30], 0, 1.0, 16);
        d.insert(15, &mut NullMemory);
        d.delete(20, &mut NullMemory);
        assert_eq!(d.main_keys(), &[10, 20, 30]);
        assert_eq!(d.pending_inserts(), &[15]);
        assert_eq!(d.pending_deletes(), &[20]);
        d.merge(&mut NullMemory);
        assert_eq!(d.main_keys(), &[10, 15, 30]);
        assert!(d.pending_inserts().is_empty() && d.pending_deletes().is_empty());
    }

    /// Bills nothing but counts every access, so tests can assert *how
    /// much work was billed* rather than how long it simulated.
    #[derive(Default)]
    struct CountingMemory {
        reads: u64,
        writes: u64,
        computes: u64,
    }

    impl MemoryModel for CountingMemory {
        fn touch(&mut self, _addr: u64, _len: u32, kind: AccessKind) -> f64 {
            match kind {
                AccessKind::Read | AccessKind::StreamRead => self.reads += 1,
                _ => self.writes += 1,
            }
            0.0
        }
        fn compute(&mut self, _ns: f64) -> f64 {
            self.computes += 1;
            0.0
        }
    }

    #[test]
    fn nop_updates_bill_exactly_one_probe_over_main() {
        // Regression for the double-probe under-billing: insert/delete
        // used to run one *instrumented* upper-bound search and then a
        // second, uninstrumented `contains_sorted` over the same main
        // array — twice the work, half of it invisible to the cost model.
        // Membership now falls out of the single billed search, so the
        // billed reads of a no-op update are exactly one binary search:
        // between ⌊log₂ n⌋ and ⌈log₂ n⌉ + 1 probes, each with its billed
        // comparison.
        let n = 4096usize;
        let keys: Vec<u32> = (1..=n as u32).map(|i| i * 2).collect();
        let mut d = DeltaArray::new(keys, 0, 1.0, 64);

        let mut m = CountingMemory::default();
        let (ok, _) = d.insert(2048, &mut m); // 2048 = 1024*2, present in main
        assert!(!ok, "duplicate insert is a nop");
        let dup_insert_reads = m.reads;
        assert_eq!(m.computes, m.reads, "every billed probe carries its comparison");
        assert_eq!(m.writes, 0, "a nop must not bill delta writes");

        let mut m = CountingMemory::default();
        let (ok, _) = d.delete(2047, &mut m); // odd key, absent from main
        assert!(!ok, "absent delete is a nop");
        let absent_delete_reads = m.reads;
        assert_eq!(m.writes, 0);

        // One upper-bound binary search over n keys.
        let lg = (n as f64).log2();
        let lo_bound = lg.floor() as u64;
        let hi_bound = lg.ceil() as u64 + 1;
        for (what, reads) in
            [("duplicate insert", dup_insert_reads), ("absent delete", absent_delete_reads)]
        {
            assert!(
                (lo_bound..=hi_bound).contains(&reads),
                "{what} billed {reads} probes; one search over {n} keys is {lo_bound}..={hi_bound}"
            );
        }
    }

    #[test]
    fn applied_update_bills_the_same_single_probe_plus_delta_shift() {
        // An *applied* insert pays the identical single search over main
        // plus one streaming delta-shift write — parity with the nop path
        // on the probe side.
        let keys: Vec<u32> = (1..=4096u32).map(|i| i * 2).collect();
        let mut d = DeltaArray::new(keys, 0, 1.0, 64);

        let mut nop = CountingMemory::default();
        let (ok, _) = d.insert(2048, &mut nop);
        assert!(!ok);

        let mut applied = CountingMemory::default();
        let (ok, _) = d.insert(2049, &mut applied); // absent: lands in delta
        assert!(ok);

        // 2048 and 2049 walk the same upper-bound path over even keys.
        assert_eq!(applied.reads, nop.reads, "probe work must not depend on the outcome");
        assert_eq!(applied.writes, 1, "the applied insert adds exactly the delta shift");
    }

    #[test]
    fn merge_cost_is_streaming_not_random() {
        use dini_cache_sim::{MachineParams, SimMemory};
        let keys: Vec<u32> = (1..=50_000).map(|i| i * 3).collect();
        let mut d = DeltaArray::new(keys, 1 << 20, 1.0, 1024);
        let mut m = SimMemory::new(MachineParams::pentium_iii());
        for i in 0..1000u32 {
            d.insert(i * 3 + 1, &mut m);
        }
        m.reset_stats();
        d.merge(&mut m);
        let s = m.stats();
        assert!(s.streamed_bytes > 0);
        assert_eq!(s.random_accesses(), 0, "merge must be purely streaming");
    }
}
