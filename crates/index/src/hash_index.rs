//! Open-addressing hash index — the structure the paper *excludes*.
//!
//! §1: "We do not consider hash arrays for the index data structure."
//! The reason is semantic: the DINI problem routes a query key to the node
//! owning its *range*, i.e. it needs `rank(key)` for keys that are not in
//! the index. A hash table can only answer exact-match lookups, so it
//! cannot implement [`crate::traits::RankIndex`] at all — this type
//! deliberately does not implement that trait; the capability gap *is*
//! the paper's point.
//!
//! We still build it, instrumented, for the ablation bench: for pure
//! exact-match workloads a cache-resident hash table beats every sorted
//! structure (one probe ≈ one cache line vs. `L` of them), quantifying
//! what the range requirement costs.

use crate::traits::Cost;
use dini_cache_sim::{AccessKind, MemoryModel};

/// Linear-probing hash table mapping `key → rank`, instrumented against a
/// [`MemoryModel`].
///
/// Slots are 8 bytes (`key`, `rank`), load factor ≤ 0.5, capacity a power
/// of two. Multiplicative (Fibonacci) hashing keeps probe sequences short
/// and deterministic.
#[derive(Debug, Clone)]
pub struct HashIndex {
    /// Slot array: `u64::MAX` = empty, else `(key << 32) | rank`.
    slots: Vec<u64>,
    mask: u64,
    /// Fibonacci-hash shift: `64 − log2(capacity)` (home slot = top bits
    /// of the multiplicative product, the well-mixed ones).
    shift: u32,
    n_keys: usize,
    base: u64,
    cmp_cost_ns: f64,
}

const EMPTY: u64 = u64::MAX;
const SLOT_BYTES: u64 = 8;

#[inline]
fn hash(key: u32, shift: u32) -> u64 {
    (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift
}

impl HashIndex {
    /// Build over sorted `keys` (ranks are their positions + 1, matching
    /// `rank(k) =` number of keys ≤ `k` for *present* keys). `base` is the
    /// simulated address of slot 0.
    pub fn new(keys: &[u32], base: u64, cmp_cost_ns: f64) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted unique");
        let cap = (keys.len() * 2).next_power_of_two().max(8);
        let mask = cap as u64 - 1;
        let shift = 64 - cap.trailing_zeros();
        let mut slots = vec![EMPTY; cap];
        for (i, &k) in keys.iter().enumerate() {
            let rank = (i + 1) as u64;
            let mut s = hash(k, shift);
            while slots[s as usize] != EMPTY {
                s = (s + 1) & mask;
            }
            slots[s as usize] = ((k as u64) << 32) | rank;
        }
        Self { slots, mask, shift, n_keys: keys.len(), base, cmp_cost_ns }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.n_keys
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.n_keys == 0
    }

    /// Bytes of simulated address space the table occupies. Note it is
    /// *larger* than the sorted array it indexes (≥ 2× slots × 8 B vs
    /// 4 B/key) — the cache-pressure cost of O(1) lookups.
    pub fn footprint_bytes(&self) -> u64 {
        self.slots.len() as u64 * SLOT_BYTES
    }

    /// Exact-match lookup: the rank of `key` if present, else `None`.
    /// Charges one random access per probed slot.
    ///
    /// This is the API a hash index *can* offer; contrast with
    /// [`crate::traits::RankIndex::rank`], which it cannot.
    pub fn get<M: MemoryModel>(&self, key: u32, mem: &mut M) -> (Option<u32>, Cost) {
        let mut s = hash(key, self.shift);
        let mut ns = 0.0;
        loop {
            ns += mem.touch(self.base + s * SLOT_BYTES, SLOT_BYTES as u32, AccessKind::Read);
            ns += mem.compute(self.cmp_cost_ns);
            let slot = self.slots[s as usize];
            if slot == EMPTY {
                return (None, ns);
            }
            if (slot >> 32) as u32 == key {
                return (Some(slot as u32), ns);
            }
            s = (s + 1) & self.mask;
        }
    }

    /// Mean probes per present-key lookup (table quality metric).
    pub fn mean_probes(&self) -> f64 {
        if self.n_keys == 0 {
            return 0.0;
        }
        let mut total = 0u64;
        for (i, &slot) in self.slots.iter().enumerate() {
            if slot == EMPTY {
                continue;
            }
            let key = (slot >> 32) as u32;
            let home = hash(key, self.shift);
            let dist = (i as u64).wrapping_sub(home) & self.mask;
            total += dist + 1;
        }
        total as f64 / self.n_keys as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dini_cache_sim::{CountingMemory, MachineParams, NullMemory, SimMemory};

    fn table(n: u32) -> (Vec<u32>, HashIndex) {
        let keys: Vec<u32> = (1..=n).map(|i| i * 10).collect();
        let h = HashIndex::new(&keys, 1 << 20, 1.0);
        (keys, h)
    }

    #[test]
    fn present_keys_return_their_rank() {
        let (keys, h) = table(1000);
        for (i, &k) in keys.iter().enumerate() {
            let (r, _) = h.get(k, &mut NullMemory);
            assert_eq!(r, Some(i as u32 + 1), "key {k}");
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let (_, h) = table(1000);
        for k in [0u32, 5, 15, 10_005, u32::MAX] {
            assert_eq!(h.get(k, &mut NullMemory).0, None, "key {k}");
        }
    }

    #[test]
    fn empty_table() {
        let h = HashIndex::new(&[], 0, 1.0);
        assert!(h.is_empty());
        assert_eq!(h.get(7, &mut NullMemory).0, None);
    }

    #[test]
    fn load_factor_keeps_probes_short() {
        let (_, h) = table(100_000);
        assert!(h.mean_probes() < 2.0, "mean probes {}", h.mean_probes());
    }

    #[test]
    fn lookup_touches_expected_slots() {
        let (keys, h) = table(10_000);
        let mut m = CountingMemory::default();
        h.get(keys[1234], &mut m);
        // Linear probing: a handful of adjacent slots at most.
        assert!(m.random_touches() <= 6, "{} probes", m.random_touches());
        for (addr, _, _) in &m.accesses {
            assert!(*addr >= 1 << 20 && *addr < (1 << 20) + h.footprint_bytes());
        }
    }

    #[test]
    fn exact_match_beats_binary_search_in_probes() {
        use crate::sorted_array::SortedArray;
        use crate::traits::RankIndex;
        let keys: Vec<u32> = (1..=50_000u32).map(|i| i * 3).collect();
        let h = HashIndex::new(&keys, 0, 1.0);
        let a = SortedArray::new(keys.clone(), 1 << 28, 1.0);
        let mut hm = CountingMemory::default();
        let mut am = CountingMemory::default();
        for &k in keys.iter().step_by(997) {
            h.get(k, &mut hm);
            a.rank(k, &mut am);
        }
        assert!(
            hm.random_touches() * 3 < am.random_touches(),
            "hash {} vs array {}",
            hm.random_touches(),
            am.random_touches()
        );
    }

    #[test]
    fn footprint_is_larger_than_sorted_array() {
        let (keys, h) = table(100_000);
        assert!(h.footprint_bytes() >= 4 * (keys.len() as u64 * 4));
    }

    #[test]
    fn hot_table_stays_cache_resident() {
        // 16 K keys → 256 KB table fits the 512 KB L2.
        let keys: Vec<u32> = (1..=16_384u32).map(|i| i * 5).collect();
        let h = HashIndex::new(&keys, 1 << 22, 1.0);
        assert!(h.footprint_bytes() <= 512 * 1024);
        let mut m = SimMemory::new(MachineParams::pentium_iii());
        for &k in &keys {
            h.get(k, &mut m);
        }
        m.reset_stats();
        for &k in keys.iter().rev() {
            h.get(k, &mut m);
        }
        assert_eq!(m.stats().memory_accesses, 0);
    }
}
