//! Common index abstractions.

use dini_cache_sim::MemoryModel;

/// Simulated nanoseconds charged by an operation.
pub type Cost = f64;

/// An index over a sorted set of `u32` keys answering rank queries.
///
/// `rank(key)` = number of index keys `≤ key`. All DINI structures agree on
/// this function, which is what lets Method C compose partition-local
/// results into global ones and lets tests cross-check structures.
pub trait RankIndex {
    /// Number of keys indexed.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of simulated address space the structure occupies (what it
    /// costs to keep cache-resident).
    fn footprint_bytes(&self) -> u64;

    /// Rank of `key`, charging accesses to `mem`; returns `(rank, cost_ns)`.
    fn rank<M: MemoryModel>(&self, key: u32, mem: &mut M) -> (u32, Cost);

    /// Rank every key in `keys` into `out` (cleared first); returns total
    /// cost. Structures with batch-specific algorithms override this.
    fn rank_batch<M: MemoryModel>(&self, keys: &[u32], out: &mut Vec<u32>, mem: &mut M) -> Cost {
        out.clear();
        out.reserve(keys.len());
        let mut ns = 0.0;
        for &k in keys {
            let (r, c) = self.rank(k, mem);
            out.push(r);
            ns += c;
        }
        ns
    }

    /// Number of index keys in the inclusive range `[lo, hi]` — two rank
    /// queries. The routing use-case behind this: "which node(s) own this
    /// key range" in a range-partitioned cluster.
    fn range_count<M: MemoryModel>(&self, lo: u32, hi: u32, mem: &mut M) -> (u32, Cost) {
        assert!(lo <= hi, "range_count requires lo <= hi");
        let (rhi, c1) = self.rank(hi, mem);
        if lo == 0 {
            return (rhi, c1);
        }
        let (rlo, c2) = self.rank(lo - 1, mem);
        (rhi - rlo, c1 + c2)
    }
}

/// Reference oracle: rank by `partition_point` on the raw sorted slice.
pub fn oracle_rank(keys: &[u32], key: u32) -> u32 {
    keys.partition_point(|&k| k <= key) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matches_upper_bound_semantics() {
        let keys = [10u32, 20, 30];
        assert_eq!(oracle_rank(&keys, 5), 0);
        assert_eq!(oracle_rank(&keys, 10), 1);
        assert_eq!(oracle_rank(&keys, 15), 1);
        assert_eq!(oracle_rank(&keys, 30), 3);
        assert_eq!(oracle_rank(&keys, u32::MAX), 3);
    }
}
