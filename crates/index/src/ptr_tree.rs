//! Classic pointer-based n-ary tree (the non-CSB+ layout).
//!
//! Stores *every* child pointer in the node, so a 32-byte line holds only
//! 3 separators + 4 child indices (fan-out 4) instead of CSB+'s 7 + 1
//! (fan-out 8). The deeper tree pays proportionally more cache misses per
//! lookup — this structure exists to quantify the Rao–Ross optimisation
//! the paper adopts ("An optimization of Rao and Ross is used to store one
//! pointer at each node of the tree").

use crate::traits::{Cost, RankIndex};
use dini_cache_sim::{AccessKind, MemoryModel};

/// How many separator keys fit a node of `line_bytes` when all child
/// pointers are stored: `s` keys + `s+1` pointers, 4 bytes each.
pub fn ptr_node_keys(line_bytes: u64) -> u32 {
    let words = (line_bytes / 4) as u32;
    (words - 1) / 2
}

#[derive(Debug, Clone)]
struct Node {
    seps: Vec<u32>,
    /// Child arena indices (internal) — empty for leaves.
    children: Vec<u32>,
    /// Leaf: rank of the first key; internal: unused.
    base_rank: u32,
    /// Leaf keys (leaves reuse `seps` for keys; kept separate for clarity).
    leaf: bool,
}

/// Pointer-per-child n-ary tree.
#[derive(Debug, Clone)]
pub struct PtrNaryTree {
    nodes: Vec<Node>,
    root: u32,
    n_keys: usize,
    k: u32,
    line_bytes: u64,
    base: u64,
    comp_cost_node_ns: f64,
    n_levels: usize,
}

impl PtrNaryTree {
    /// Build over sorted `keys` with nodes of `line_bytes` bytes.
    pub fn new(keys: &[u32], line_bytes: u64, base: u64, comp_cost_node_ns: f64) -> Self {
        let k = ptr_node_keys(line_bytes).max(1);
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let mut nodes: Vec<Node> = Vec::new();
        if keys.is_empty() {
            return Self {
                nodes,
                root: 0,
                n_keys: 0,
                k,
                line_bytes,
                base,
                comp_cost_node_ns,
                n_levels: 0,
            };
        }

        // Leaves hold up to k keys each (same as separators for symmetry).
        let mut level: Vec<(u32, u32)> = Vec::new(); // (node idx, rep key)
        for (j, chunk) in keys.chunks(k as usize).enumerate() {
            let idx = nodes.len() as u32;
            nodes.push(Node {
                seps: chunk.to_vec(),
                children: Vec::new(),
                base_rank: (j * k as usize) as u32,
                leaf: true,
            });
            level.push((idx, *chunk.last().expect("non-empty chunk")));
        }
        let mut n_levels = 1usize;
        let fanout = k as usize + 1;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(fanout));
            for group in level.chunks(fanout) {
                let idx = nodes.len() as u32;
                let seps = group[..group.len() - 1].iter().map(|&(_, rep)| rep).collect();
                let children = group.iter().map(|&(i, _)| i).collect();
                nodes.push(Node { seps, children, base_rank: 0, leaf: false });
                next.push((idx, group.last().expect("non-empty group").1));
            }
            level = next;
            n_levels += 1;
        }
        let root = level[0].0;
        Self { nodes, root, n_keys: keys.len(), k, line_bytes, base, comp_cost_node_ns, n_levels }
    }

    /// Separator keys per node (3 on a 32-byte line).
    pub fn keys_per_node(&self) -> u32 {
        self.k
    }

    /// Tree depth.
    pub fn n_levels(&self) -> usize {
        self.n_levels
    }

    /// Arena size in nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn node_addr(&self, idx: u32) -> u64 {
        self.base + idx as u64 * self.line_bytes
    }
}

impl RankIndex for PtrNaryTree {
    fn len(&self) -> usize {
        self.n_keys
    }

    fn footprint_bytes(&self) -> u64 {
        self.nodes.len() as u64 * self.line_bytes
    }

    fn rank<M: MemoryModel>(&self, key: u32, mem: &mut M) -> (u32, Cost) {
        if self.n_keys == 0 {
            return (0, 0.0);
        }
        let mut idx = self.root;
        let mut ns = 0.0;
        loop {
            ns += mem.touch(self.node_addr(idx), self.line_bytes as u32, AccessKind::Read);
            ns += mem.compute(self.comp_cost_node_ns);
            let node = &self.nodes[idx as usize];
            let slot = node.seps.partition_point(|&s| s <= key) as u32;
            if node.leaf {
                return (node.base_rank + slot, ns);
            }
            idx = node.children[slot as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csb::CsbTree;
    use crate::traits::{oracle_rank, RankIndex};
    use dini_cache_sim::{CountingMemory, NullMemory};

    #[test]
    fn geometry_32_byte_line() {
        // 8 words: s + (s+1) <= 8 → s = 3, fan-out 4.
        assert_eq!(ptr_node_keys(32), 3);
        assert_eq!(ptr_node_keys(128), 15);
    }

    #[test]
    fn rank_matches_oracle() {
        let keys: Vec<u32> = (1..=500).map(|i| i * 3).collect();
        let t = PtrNaryTree::new(&keys, 32, 0, 30.0);
        for key in 0..1_600u32 {
            assert_eq!(t.rank(key, &mut NullMemory).0, oracle_rank(&keys, key), "key {key}");
        }
    }

    #[test]
    fn deeper_than_csb_for_same_keys() {
        let keys: Vec<u32> = (0..50_000u32).map(|i| i * 2).collect();
        let ptr = PtrNaryTree::new(&keys, 32, 0, 30.0);
        let csb = CsbTree::new(&keys, 7, 32, 0, 30.0);
        assert!(
            ptr.n_levels() > csb.n_levels(),
            "fan-out 4 tree ({}) must be deeper than fan-out 8 tree ({})",
            ptr.n_levels(),
            csb.n_levels()
        );
        assert!(ptr.footprint_bytes() > csb.footprint_bytes());
    }

    #[test]
    fn touches_one_node_per_level() {
        let keys: Vec<u32> = (0..10_000u32).map(|i| i * 5).collect();
        let t = PtrNaryTree::new(&keys, 32, 0, 30.0);
        let mut m = CountingMemory::default();
        t.rank(31_415, &mut m);
        assert_eq!(m.random_touches(), t.n_levels());
    }

    #[test]
    fn empty_tree_ranks_zero() {
        let t = PtrNaryTree::new(&[], 32, 0, 30.0);
        assert_eq!(t.rank(9, &mut NullMemory).0, 0);
    }
}
