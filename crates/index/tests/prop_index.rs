//! Property tests: every index structure computes the same rank function,
//! partitioning composes, and buffered lookup agrees with plain lookup.

use dini_cache_sim::{AddressSpace, NullMemory};
use dini_index::{BufferedLookup, CsbTree, PartitionedIndex, PtrNaryTree, RankIndex, SortedArray};
use proptest::prelude::*;

fn arb_keys() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0u32..1_000_000, 1..2_000)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

fn oracle(keys: &[u32], q: u32) -> u32 {
    keys.partition_point(|&k| k <= q) as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SortedArray == oracle on arbitrary sorted-unique key sets.
    #[test]
    fn sorted_array_matches_oracle(keys in arb_keys(), qs in prop::collection::vec(0u32..1_100_000, 1..100)) {
        let a = SortedArray::new(keys.clone(), 4096, 4.0);
        for q in qs {
            prop_assert_eq!(a.rank(q, &mut NullMemory).0, oracle(&keys, q));
        }
    }

    /// CsbTree == oracle, for several node widths.
    #[test]
    fn csb_tree_matches_oracle(
        keys in arb_keys(),
        qs in prop::collection::vec(0u32..1_100_000, 1..100),
        k in 1u32..16,
    ) {
        let t = CsbTree::new(&keys, k, 32, 4096, 30.0);
        for q in qs {
            prop_assert_eq!(t.rank(q, &mut NullMemory).0, oracle(&keys, q));
        }
    }

    /// PtrNaryTree == oracle.
    #[test]
    fn ptr_tree_matches_oracle(keys in arb_keys(), qs in prop::collection::vec(0u32..1_100_000, 1..100)) {
        let t = PtrNaryTree::new(&keys, 32, 4096, 30.0);
        for q in qs {
            prop_assert_eq!(t.rank(q, &mut NullMemory).0, oracle(&keys, q));
        }
    }

    /// Partitioned (array per slave) == flat, for any partition count.
    #[test]
    fn partitioned_composition(keys in arb_keys(), parts in 1usize..16, qs in prop::collection::vec(0u32..1_100_000, 1..50)) {
        prop_assume!(keys.len() >= parts);
        let mut space = AddressSpace::new();
        let delim = space.alloc_lines(1024);
        let pi = PartitionedIndex::build(&keys, parts, delim, 4.0, |s, _| {
            let b = space.alloc_lines(s.len() as u64 * 4);
            SortedArray::new(s.to_vec(), b, 4.0)
        });
        for q in qs {
            prop_assert_eq!(pi.rank(q, &mut NullMemory).0, oracle(&keys, q));
        }
    }

    /// Buffered batch lookup over a CSB tree == per-key lookups,
    /// for arbitrary cache capacities (i.e. arbitrary cut shapes).
    #[test]
    fn buffered_equals_plain(
        keys in arb_keys(),
        qs in prop::collection::vec(0u32..1_100_000, 1..200),
        cap_kb in 1u64..64,
    ) {
        let t = CsbTree::new(&keys, 7, 32, 1 << 20, 30.0);
        let mut space = AddressSpace::new();
        let mut bl = BufferedLookup::for_cache(&t, cap_kb * 1024, 0.5, &mut space, qs.len());
        let mut out = Vec::new();
        bl.rank_batch(&t, &qs, &mut out, &mut NullMemory);
        for (i, &q) in qs.iter().enumerate() {
            prop_assert_eq!(out[i], t.rank(q, &mut NullMemory).0);
        }
    }

    /// Reusing one BufferedLookup across batches never leaks state.
    #[test]
    fn buffered_reuse_is_clean(
        keys in arb_keys(),
        qs1 in prop::collection::vec(0u32..1_100_000, 1..100),
        qs2 in prop::collection::vec(0u32..1_100_000, 1..100),
    ) {
        let t = CsbTree::new(&keys, 7, 32, 1 << 20, 30.0);
        let mut space = AddressSpace::new();
        let n = qs1.len().max(qs2.len());
        let mut bl = BufferedLookup::for_cache(&t, 8 * 1024, 0.5, &mut space, n);
        let mut out = Vec::new();
        bl.rank_batch(&t, &qs1, &mut out, &mut NullMemory);
        bl.rank_batch(&t, &qs2, &mut out, &mut NullMemory);
        for (i, &q) in qs2.iter().enumerate() {
            prop_assert_eq!(out[i], t.rank(q, &mut NullMemory).0);
        }
    }
}
