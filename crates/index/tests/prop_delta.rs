//! Property tests: `DeltaArray` against a `BTreeSet` oracle under
//! arbitrary operation sequences, including forced merges.

use dini_cache_sim::NullMemory;
use dini_index::{DeltaArray, RankIndex};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// An operation drawn by proptest.
#[derive(Debug, Clone)]
enum POp {
    Insert(u32),
    Delete(u32),
    Rank(u32),
    Merge,
}

fn op_strategy() -> impl Strategy<Value = POp> {
    // Keys from a small space so inserts/deletes collide often (the
    // interesting paths: duplicate insert, tombstone, resurrect).
    let key = 0u32..500;
    prop_oneof![
        4 => key.clone().prop_map(POp::Insert),
        3 => key.clone().prop_map(POp::Delete),
        4 => key.prop_map(POp::Rank),
        1 => Just(POp::Merge),
    ]
}

fn oracle_rank(set: &BTreeSet<u32>, key: u32) -> u32 {
    set.range(..=key).count() as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn delta_array_matches_btreeset(
        initial in proptest::collection::btree_set(0u32..500, 0..100),
        ops in proptest::collection::vec(op_strategy(), 1..200),
        threshold in 1usize..64,
    ) {
        let boot: Vec<u32> = initial.iter().copied().collect();
        let mut set: BTreeSet<u32> = initial;
        let mut idx = DeltaArray::new(boot, 4096, 1.0, threshold);
        let mut mem = NullMemory;

        for op in ops {
            match op {
                POp::Insert(k) => {
                    let (ok, _) = idx.insert(k, &mut mem);
                    prop_assert_eq!(ok, set.insert(k), "insert {}", k);
                }
                POp::Delete(k) => {
                    let (ok, _) = idx.delete(k, &mut mem);
                    prop_assert_eq!(ok, set.remove(&k), "delete {}", k);
                }
                POp::Rank(k) => {
                    let (r, _) = idx.rank(k, &mut mem);
                    prop_assert_eq!(r, oracle_rank(&set, k), "rank {}", k);
                }
                POp::Merge => {
                    idx.merge(&mut mem);
                    prop_assert_eq!(idx.delta_len(), 0);
                }
            }
            prop_assert_eq!(idx.len(), set.len());
            if idx.needs_merge() {
                idx.merge(&mut mem);
            }
        }
        // Full final sweep.
        for k in (0..520).step_by(3) {
            let (r, _) = idx.rank(k, &mut mem);
            prop_assert_eq!(r, oracle_rank(&set, k), "final rank {}", k);
        }
    }

    #[test]
    fn contains_agrees_with_membership(
        initial in proptest::collection::btree_set(0u32..300, 1..80),
        ins in proptest::collection::vec(0u32..300, 0..40),
        del in proptest::collection::vec(0u32..300, 0..40),
    ) {
        let boot: Vec<u32> = initial.iter().copied().collect();
        let mut set = initial;
        let mut idx = DeltaArray::new(boot, 0, 1.0, 1024);
        let mut mem = NullMemory;
        for k in ins {
            idx.insert(k, &mut mem);
            set.insert(k);
        }
        for k in del {
            idx.delete(k, &mut mem);
            set.remove(&k);
        }
        for k in 0..310 {
            prop_assert_eq!(idx.contains(k), set.contains(&k), "contains({})", k);
        }
    }
}
